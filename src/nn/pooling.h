#ifndef EDDE_NN_POOLING_H_
#define EDDE_NN_POOLING_H_

#include <string>
#include <vector>

#include "nn/module.h"

namespace edde {

/// Max pooling with square window == stride over (N, C, H, W).
class MaxPool2d : public Module {
 public:
  explicit MaxPool2d(int64_t window);

  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  void CollectParameters(std::vector<Parameter*>* out) override;
  std::string name() const override;

 private:
  int64_t window_;
  Shape cached_input_shape_;
  std::vector<int64_t> argmax_;
};

/// Global average pooling: (N, C, H, W) -> (N, C).
class GlobalAvgPool2d : public Module {
 public:
  GlobalAvgPool2d() = default;

  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  void CollectParameters(std::vector<Parameter*>* out) override;
  std::string name() const override { return "global_avg_pool"; }

 private:
  Shape cached_input_shape_;
};

/// Flatten: (N, ...) -> (N, prod(...)).
class Flatten : public Module {
 public:
  Flatten() = default;

  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  void CollectParameters(std::vector<Parameter*>* out) override;
  std::string name() const override { return "flatten"; }

 private:
  Shape cached_input_shape_;
};

}  // namespace edde

#endif  // EDDE_NN_POOLING_H_
