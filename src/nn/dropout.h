#ifndef EDDE_NN_DROPOUT_H_
#define EDDE_NN_DROPOUT_H_

#include <string>
#include <vector>

#include "nn/module.h"
#include "tensor/rng.h"

namespace edde {

/// Inverted dropout: during training each element is zeroed with probability
/// `rate` and survivors are scaled by 1/(1-rate); identity at eval time.
class Dropout : public Module {
 public:
  /// `rate` in [0, 1); `seed` makes the mask stream reproducible.
  Dropout(float rate, uint64_t seed);

  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  void CollectParameters(std::vector<Parameter*>* out) override;
  std::string name() const override;

 private:
  float rate_;
  Rng rng_;
  Tensor cached_mask_;
  bool cached_training_ = false;
};

}  // namespace edde

#endif  // EDDE_NN_DROPOUT_H_
