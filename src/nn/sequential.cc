#include "nn/sequential.h"

#include "utils/logging.h"

namespace edde {

Module* Sequential::Add(std::unique_ptr<Module> layer) {
  layers_.push_back(std::move(layer));
  return layers_.back().get();
}

Tensor Sequential::Forward(const Tensor& input, bool training) {
  Tensor x = input;
  for (auto& layer : layers_) {
    x = layer->Forward(x, training);
  }
  return x;
}

Tensor Sequential::Backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->Backward(g);
  }
  return g;
}

void Sequential::CollectParameters(std::vector<Parameter*>* out) {
  for (auto& layer : layers_) layer->CollectParameters(out);
}

std::string Sequential::name() const {
  std::string s = "sequential[";
  for (size_t i = 0; i < layers_.size(); ++i) {
    if (i > 0) s += ", ";
    s += layers_[i]->name();
  }
  return s + "]";
}

void Sequential::SetPrecision(Precision precision) {
  precision_ = precision;
  for (auto& layer : layers_) layer->SetPrecision(precision);
}

}  // namespace edde
