#ifndef EDDE_NN_MLP_H_
#define EDDE_NN_MLP_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/module.h"
#include "nn/sequential.h"

namespace edde {

/// Multi-layer perceptron configuration. Used for fast unit tests and as a
/// cheap base learner in property-style sweeps.
struct MlpConfig {
  int in_features = 16;
  std::vector<int> hidden = {32};
  int num_classes = 10;
};

/// Dense -> ReLU stacks with a linear classification head.
class Mlp : public Module {
 public:
  Mlp(const MlpConfig& config, uint64_t seed);

  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  void CollectParameters(std::vector<Parameter*>* out) override;
  std::string name() const override;
  void SetPrecision(Precision precision) override;

  const MlpConfig& config() const { return config_; }

 private:
  MlpConfig config_;
  Sequential body_;
};

}  // namespace edde

#endif  // EDDE_NN_MLP_H_
