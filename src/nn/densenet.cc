#include "nn/densenet.h"

#include "tensor/ops.h"
#include "utils/logging.h"

namespace edde {

int DenseNetConfig::LayersPerBlock() const {
  EDDE_CHECK_EQ((depth - 4) % 3, 0) << "DenseNet depth must be 3m+4";
  return (depth - 4) / 3;
}

DenseLayer::DenseLayer(int64_t in_channels, int64_t growth, Rng* rng)
    : in_channels_(in_channels),
      bn_(in_channels),
      conv_(in_channels, growth, /*kernel=*/3, /*stride=*/1, /*padding=*/1,
            /*use_bias=*/false, rng) {}

Tensor DenseLayer::Forward(const Tensor& input, bool training) {
  Tensor h = bn_.Forward(input, training);
  h = relu_.Forward(h, training);
  h = conv_.Forward(h, training);
  return ConcatChannels(input, h);
}

Tensor DenseLayer::Backward(const Tensor& grad_output) {
  Tensor grad_skip, grad_new;
  SplitChannelsGrad(grad_output, in_channels_, &grad_skip, &grad_new);
  Tensor g = conv_.Backward(grad_new);
  g = relu_.Backward(g);
  g = bn_.Backward(g);
  Axpy(1.0f, grad_skip, &g);
  return g;
}

void DenseLayer::CollectParameters(std::vector<Parameter*>* out) {
  bn_.CollectParameters(out);
  conv_.CollectParameters(out);
}

std::string DenseLayer::name() const {
  return "dense_layer(+" + std::to_string(conv_.geom().out_channels) + ")";
}

void DenseLayer::SetPrecision(Precision precision) {
  precision_ = precision;
  conv_.SetPrecision(precision);
}

TransitionLayer::TransitionLayer(int64_t in_channels, int64_t out_channels,
                                 Rng* rng)
    : bn_(in_channels),
      conv_(in_channels, out_channels, /*kernel=*/1, /*stride=*/1,
            /*padding=*/0, /*use_bias=*/false, rng) {}

Tensor TransitionLayer::Forward(const Tensor& input, bool training) {
  Tensor h = bn_.Forward(input, training);
  h = relu_.Forward(h, training);
  h = conv_.Forward(h, training);
  cached_conv_out_shape_ = h.shape();
  return AvgPool2dForward(h, /*window=*/2);
}

Tensor TransitionLayer::Backward(const Tensor& grad_output) {
  EDDE_CHECK_GT(cached_conv_out_shape_.rank(), 0) << "Backward before Forward";
  Tensor g = AvgPool2dBackward(cached_conv_out_shape_, grad_output,
                               /*window=*/2);
  g = conv_.Backward(g);
  g = relu_.Backward(g);
  return bn_.Backward(g);
}

void TransitionLayer::CollectParameters(std::vector<Parameter*>* out) {
  bn_.CollectParameters(out);
  conv_.CollectParameters(out);
}

std::string TransitionLayer::name() const { return "transition"; }

void TransitionLayer::SetPrecision(Precision precision) {
  precision_ = precision;
  conv_.SetPrecision(precision);
}

DenseNet::DenseNet(const DenseNetConfig& config, uint64_t seed)
    : config_(config) {
  Rng rng(seed);
  const int m = config.LayersPerBlock();
  const int64_t g = config.growth;
  int64_t channels = 2 * g;  // conventional stem width 2k
  stem_ = std::make_unique<Conv2d>(config.in_channels, channels, /*kernel=*/3,
                                   /*stride=*/1, /*padding=*/1,
                                   /*use_bias=*/false, &rng);
  for (int block = 0; block < 3; ++block) {
    for (int layer = 0; layer < m; ++layer) {
      body_.push_back(std::make_unique<DenseLayer>(channels, g, &rng));
      channels += g;
    }
    if (block < 2) {
      body_.push_back(std::make_unique<TransitionLayer>(channels, channels,
                                                        &rng));
    }
  }
  final_bn_ = std::make_unique<BatchNorm>(channels);
  classifier_ = std::make_unique<Dense>(channels, config.num_classes, &rng);
}

Tensor DenseNet::Forward(const Tensor& input, bool training) {
  Tensor x = stem_->Forward(input, training);
  for (auto& layer : body_) x = layer->Forward(x, training);
  x = final_bn_->Forward(x, training);
  x = final_relu_.Forward(x, training);
  x = pool_.Forward(x, training);
  return classifier_->Forward(x, training);
}

Tensor DenseNet::Backward(const Tensor& grad_output) {
  Tensor g = classifier_->Backward(grad_output);
  g = pool_.Backward(g);
  g = final_relu_.Backward(g);
  g = final_bn_->Backward(g);
  for (auto it = body_.rbegin(); it != body_.rend(); ++it) {
    g = (*it)->Backward(g);
  }
  return stem_->Backward(g);
}

void DenseNet::CollectParameters(std::vector<Parameter*>* out) {
  stem_->CollectParameters(out);
  for (auto& layer : body_) layer->CollectParameters(out);
  final_bn_->CollectParameters(out);
  classifier_->CollectParameters(out);
}

std::string DenseNet::name() const {
  return "densenet" + std::to_string(config_.depth) + "(k" +
         std::to_string(config_.growth) + ")";
}

void DenseNet::SetPrecision(Precision precision) {
  precision_ = precision;
  stem_->SetPrecision(precision);
  for (auto& layer : body_) layer->SetPrecision(precision);
  classifier_->SetPrecision(precision);
}

}  // namespace edde
