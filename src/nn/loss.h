#ifndef EDDE_NN_LOSS_H_
#define EDDE_NN_LOSS_H_

#include <vector>

#include "tensor/tensor.h"

namespace edde {

/// Configuration of the weighted softmax cross-entropy loss family.
///
/// The full per-sample objective implemented here is
///
///   L_i = W_i * (  CE(y_i, p_i)                       -- bias term
///                - γ · ‖p_i − q_i‖₂                   -- EDDE diversity (Eq. 10)
///                + λ · CE(q_i, p_i) )                 -- distillation (BANs)
///
/// where p_i is the student softmax output and q_i a reference soft target
/// (the ensemble H_{t−1} for EDDE, the previous generation for BANs).
/// γ > 0 *rewards* disagreement with the reference (negative correlation);
/// λ > 0 *rewards* agreement (knowledge distillation). The paper's EDDE loss
/// is γ > 0, λ = 0; BANs is γ = 0, λ > 0; plain training is γ = λ = 0.
struct LossConfig {
  /// Strength of the diversity-driven term (paper's γ).
  float diversity_gamma = 0.0f;
  /// Strength of the distillation term (BANs).
  float distill_weight = 0.0f;
};

/// Output of one loss evaluation.
struct LossResult {
  /// Mean (weighted) loss over the batch.
  double loss = 0.0;
  /// Gradient with respect to the logits, already averaged over the batch.
  Tensor grad_logits;
  /// Softmax outputs p (N, K) — callers reuse them as soft targets.
  Tensor probs;
};

/// Evaluates the loss and its logit gradient.
///
/// `logits` is (N, K); `labels` holds N class ids; `sample_weights` holds
/// the boosting weights W (empty = all ones; values are used as-is, callers
/// normalize); `reference_probs` is (N, K) and required iff γ or λ is
/// non-zero. Gradients flow through the softmax analytically, matching the
/// paper's Eq. 11 for the diversity term.
LossResult SoftmaxCrossEntropyLoss(const Tensor& logits,
                                   const std::vector<int>& labels,
                                   const std::vector<float>& sample_weights,
                                   const Tensor& reference_probs,
                                   const LossConfig& config);

/// Convenience overload: unweighted plain cross entropy.
LossResult SoftmaxCrossEntropyLoss(const Tensor& logits,
                                   const std::vector<int>& labels);

}  // namespace edde

#endif  // EDDE_NN_LOSS_H_
