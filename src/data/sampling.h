#ifndef EDDE_DATA_SAMPLING_H_
#define EDDE_DATA_SAMPLING_H_

#include <cstdint>
#include <vector>

#include "tensor/rng.h"

namespace edde {

/// Draws `count` indices uniformly with replacement from [0, n) —
/// bootstrap sampling for Bagging.
std::vector<int64_t> BootstrapIndices(int64_t n, int64_t count, Rng* rng);

/// Draws `count` indices with replacement, proportionally to `weights`
/// (unnormalized, non-negative) — the sub-sampling step of the AdaBoost
/// family. O((n + count) log n) via cumulative sums and binary search.
std::vector<int64_t> WeightedResampleIndices(
    const std::vector<double>& weights, int64_t count, Rng* rng);

/// Partitions [0, n) into k shuffled folds of near-equal size. Fold sizes
/// differ by at most one. Used by EDDE's adaptive-β probe (paper Fig. 4).
std::vector<std::vector<int64_t>> KFoldIndices(int64_t n, int k, Rng* rng);

/// Normalizes a non-negative weight vector to sum to 1 in place.
/// Aborts if the sum is not strictly positive.
void NormalizeWeights(std::vector<double>* weights);

}  // namespace edde

#endif  // EDDE_DATA_SAMPLING_H_
