#ifndef EDDE_DATA_BATCHER_H_
#define EDDE_DATA_BATCHER_H_

#include <cstdint>
#include <vector>

#include "tensor/rng.h"

namespace edde {

/// One epoch's minibatch schedule over dataset indices, stored flat so a
/// training loop can rebuild it every epoch without allocating: the
/// permutation lives in one vector whose capacity is reused, and each batch
/// is a (pointer, size) view into it. Batches carry *dataset indices* so
/// training loops can look up per-sample boosting weights and cached
/// ensemble soft targets.
class BatchPlan {
 public:
  int64_t num_batches() const {
    return batch_size_ == 0
               ? 0
               : (size() + batch_size_ - 1) / batch_size_;
  }
  int64_t size() const { return static_cast<int64_t>(order_.size()); }

  /// Dataset indices of batch `b`; valid until the next Build on this plan.
  const int64_t* batch(int64_t b) const { return order_.data() + b * batch_size_; }
  int64_t batch_len(int64_t b) const {
    const int64_t start = b * batch_size_;
    const int64_t len = size() - start;
    return len < batch_size_ ? len : batch_size_;
  }

  /// Rebuilds the schedule for [0, n) in place (capacity is retained).
  /// Consecutive slices of `batch_size` (the last may be smaller),
  /// optionally over a shuffled permutation.
  void Build(int64_t n, int64_t batch_size, bool shuffle, Rng* rng);

 private:
  std::vector<int64_t> order_;
  int64_t batch_size_ = 0;
};

/// Copying convenience wrapper around BatchPlan::Build for callers that
/// want owned per-batch vectors (tests, evaluation loops).
std::vector<std::vector<int64_t>> MakeBatches(int64_t n, int64_t batch_size,
                                              bool shuffle, Rng* rng);

}  // namespace edde

#endif  // EDDE_DATA_BATCHER_H_
