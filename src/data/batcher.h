#ifndef EDDE_DATA_BATCHER_H_
#define EDDE_DATA_BATCHER_H_

#include <cstdint>
#include <vector>

#include "tensor/rng.h"

namespace edde {

/// Splits [0, n) into consecutive minibatches of `batch_size` (the last may
/// be smaller), optionally over a shuffled permutation. Batches carry
/// *dataset indices* so training loops can look up per-sample boosting
/// weights and cached ensemble soft targets.
std::vector<std::vector<int64_t>> MakeBatches(int64_t n, int64_t batch_size,
                                              bool shuffle, Rng* rng);

}  // namespace edde

#endif  // EDDE_DATA_BATCHER_H_
