#include "data/sampling.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "utils/logging.h"

namespace edde {

std::vector<int64_t> BootstrapIndices(int64_t n, int64_t count, Rng* rng) {
  EDDE_CHECK_GT(n, 0);
  std::vector<int64_t> out(static_cast<size_t>(count));
  for (auto& idx : out) idx = rng->UniformInt(n);
  return out;
}

std::vector<int64_t> WeightedResampleIndices(
    const std::vector<double>& weights, int64_t count, Rng* rng) {
  EDDE_CHECK(!weights.empty());
  std::vector<double> cumulative(weights.size());
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    EDDE_CHECK_GE(weights[i], 0.0) << "negative sample weight";
    acc += weights[i];
    cumulative[i] = acc;
  }
  EDDE_CHECK_GT(acc, 0.0) << "weights sum to zero";
  std::vector<int64_t> out(static_cast<size_t>(count));
  for (auto& idx : out) {
    const double u = rng->Uniform() * acc;
    const auto it =
        std::upper_bound(cumulative.begin(), cumulative.end(), u);
    idx = std::min<int64_t>(
        static_cast<int64_t>(it - cumulative.begin()),
        static_cast<int64_t>(weights.size()) - 1);
  }
  return out;
}

std::vector<std::vector<int64_t>> KFoldIndices(int64_t n, int k, Rng* rng) {
  EDDE_CHECK_GT(k, 1);
  EDDE_CHECK_GE(n, k);
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  rng->Shuffle(&order);
  std::vector<std::vector<int64_t>> folds(static_cast<size_t>(k));
  for (int64_t i = 0; i < n; ++i) {
    folds[static_cast<size_t>(i % k)].push_back(order[static_cast<size_t>(i)]);
  }
  return folds;
}

void NormalizeWeights(std::vector<double>* weights) {
  EDDE_CHECK(!weights->empty());
  double total = 0.0;
  for (double w : *weights) total += w;
  // A boosting round can zero every weight (all samples classified
  // correctly) or blow them up to inf/nan; normalizing would divide by zero
  // or propagate the non-finite values into the next round. Fall back to
  // the uniform distribution instead of aborting mid-training.
  if (!(total > 0.0) || !std::isfinite(total)) {
    EDDE_LOG(WARNING) << "degenerate weight vector (sum=" << total
                      << "); falling back to uniform weights";
    const double uniform = 1.0 / static_cast<double>(weights->size());
    for (double& w : *weights) w = uniform;
    return;
  }
  for (double& w : *weights) w /= total;
}

}  // namespace edde
