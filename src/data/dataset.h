#ifndef EDDE_DATA_DATASET_H_
#define EDDE_DATA_DATASET_H_

#include <string>
#include <utility>
#include <vector>

#include "tensor/tensor.h"

namespace edde {

/// An in-memory labeled dataset: a feature tensor whose first axis indexes
/// samples, plus integer class labels.
///
/// Copies are cheap (the feature tensor is shared); Subset materializes.
class Dataset {
 public:
  Dataset() = default;

  /// `features` is (N, ...); `labels` has N entries in [0, num_classes).
  Dataset(std::string name, Tensor features, std::vector<int> labels,
          int num_classes);

  const std::string& name() const { return name_; }
  int64_t size() const { return static_cast<int64_t>(labels_.size()); }
  int num_classes() const { return num_classes_; }
  const Tensor& features() const { return features_; }
  const std::vector<int>& labels() const { return labels_; }

  /// Scalar feature elements per sample.
  int64_t sample_elements() const;

  /// Shape of one sample (feature shape without the leading N axis).
  std::vector<int64_t> SampleDims() const;

  /// Materializes the samples at `indices` (with repetition allowed) into a
  /// new dataset — the primitive behind bootstrap resampling and k-folds.
  Dataset Subset(const std::vector<int64_t>& indices,
                 const std::string& subset_name = "") const;

  /// Gathers a feature minibatch (B, ...) for the given sample indices.
  Tensor GatherFeatures(const std::vector<int64_t>& indices) const;

  /// Gathers the labels for the given sample indices.
  std::vector<int> GatherLabels(const std::vector<int64_t>& indices) const;

  /// Allocation-free variants for hot training loops: `out` is reused when
  /// its shape already matches (B, ...) and reallocated otherwise, so a
  /// steady-state epoch stages every batch into the same buffer. `indices`
  /// points at `count` dataset indices (e.g. a BatchPlan batch view).
  void GatherFeaturesInto(const int64_t* indices, int64_t count,
                          Tensor* out) const;
  void GatherLabelsInto(const int64_t* indices, int64_t count,
                        std::vector<int>* out) const;

 private:
  std::string name_;
  Tensor features_;
  std::vector<int> labels_;
  int num_classes_ = 0;
};

/// A train/test pair produced by the synthetic generators.
struct TrainTestSplit {
  Dataset train;
  Dataset test;
};

}  // namespace edde

#endif  // EDDE_DATA_DATASET_H_
