#include "data/augment.h"

#include "utils/logging.h"

namespace edde {

Tensor AugmentImageBatch(const Tensor& batch, const AugmentConfig& cfg,
                         Rng* rng) {
  EDDE_CHECK_EQ(batch.shape().rank(), 4);
  EDDE_CHECK_GE(cfg.pad, 0);
  const int64_t n = batch.shape().dim(0);
  const int64_t c = batch.shape().dim(1);
  const int64_t h = batch.shape().dim(2);
  const int64_t w = batch.shape().dim(3);
  Tensor out(batch.shape());

  for (int64_t i = 0; i < n; ++i) {
    // Crop offset in the padded image, expressed as a shift in [-pad, pad].
    const int64_t dy =
        cfg.pad == 0 ? 0 : rng->UniformInt(2 * cfg.pad + 1) - cfg.pad;
    const int64_t dx =
        cfg.pad == 0 ? 0 : rng->UniformInt(2 * cfg.pad + 1) - cfg.pad;
    const bool flip = cfg.horizontal_flip && rng->Bernoulli(0.5);
    for (int64_t ch = 0; ch < c; ++ch) {
      const float* src = batch.data() + (i * c + ch) * h * w;
      float* dst = out.data() + (i * c + ch) * h * w;
      for (int64_t y = 0; y < h; ++y) {
        for (int64_t x = 0; x < w; ++x) {
          const int64_t sy = y + dy;
          int64_t sx = x + dx;
          if (flip) sx = w - 1 - sx;
          dst[y * w + x] = (sy >= 0 && sy < h && sx >= 0 && sx < w)
                               ? src[sy * w + sx]
                               : 0.0f;
        }
      }
    }
  }
  return out;
}

}  // namespace edde
