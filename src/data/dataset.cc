#include "data/dataset.h"

#include <cstring>

#include "utils/logging.h"

namespace edde {

Dataset::Dataset(std::string name, Tensor features, std::vector<int> labels,
                 int num_classes)
    : name_(std::move(name)),
      features_(std::move(features)),
      labels_(std::move(labels)),
      num_classes_(num_classes) {
  EDDE_CHECK_GT(features_.shape().rank(), 0);
  EDDE_CHECK_EQ(features_.shape().dim(0),
                static_cast<int64_t>(labels_.size()));
  EDDE_CHECK_GT(num_classes_, 1);
  for (int y : labels_) {
    EDDE_CHECK_GE(y, 0);
    EDDE_CHECK_LT(y, num_classes_);
  }
}

int64_t Dataset::sample_elements() const {
  return size() == 0 ? 0 : features_.num_elements() / size();
}

std::vector<int64_t> Dataset::SampleDims() const {
  const auto& dims = features_.shape().dims();
  return std::vector<int64_t>(dims.begin() + 1, dims.end());
}

Dataset Dataset::Subset(const std::vector<int64_t>& indices,
                        const std::string& subset_name) const {
  Tensor feats = GatherFeatures(indices);
  std::vector<int> labels = GatherLabels(indices);
  return Dataset(subset_name.empty() ? name_ + "/subset" : subset_name,
                 std::move(feats), std::move(labels), num_classes_);
}

Tensor Dataset::GatherFeatures(const std::vector<int64_t>& indices) const {
  Tensor out;
  GatherFeaturesInto(indices.data(), static_cast<int64_t>(indices.size()),
                     &out);
  return out;
}

std::vector<int> Dataset::GatherLabels(
    const std::vector<int64_t>& indices) const {
  std::vector<int> out;
  GatherLabelsInto(indices.data(), static_cast<int64_t>(indices.size()), &out);
  return out;
}

void Dataset::GatherFeaturesInto(const int64_t* indices, int64_t count,
                                 Tensor* out) const {
  const int64_t row = sample_elements();
  std::vector<int64_t> dims = SampleDims();
  dims.insert(dims.begin(), count);
  Shape shape(dims);
  if (out->empty() || !(out->shape() == shape)) *out = Tensor(shape);
  for (int64_t i = 0; i < count; ++i) {
    const int64_t src = indices[i];
    EDDE_CHECK_GE(src, 0);
    EDDE_CHECK_LT(src, size());
    std::memcpy(out->data() + i * row, features_.data() + src * row,
                sizeof(float) * row);
  }
}

void Dataset::GatherLabelsInto(const int64_t* indices, int64_t count,
                               std::vector<int>* out) const {
  out->resize(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    (*out)[static_cast<size_t>(i)] = labels_[static_cast<size_t>(indices[i])];
  }
}

}  // namespace edde
