#ifndef EDDE_DATA_AUGMENT_H_
#define EDDE_DATA_AUGMENT_H_

#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace edde {

/// Train-time image augmentation matching the "widely used scheme" the
/// paper cites for CIFAR (He et al.): zero-pad by `pad` pixels, take a
/// random crop back to the original size, and flip horizontally with
/// probability 1/2.
struct AugmentConfig {
  int pad = 1;
  bool horizontal_flip = true;
};

/// Applies the augmentation independently to each image of an
/// (N, C, H, W) batch, returning a new tensor.
Tensor AugmentImageBatch(const Tensor& batch, const AugmentConfig& config,
                         Rng* rng);

}  // namespace edde

#endif  // EDDE_DATA_AUGMENT_H_
