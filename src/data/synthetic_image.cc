#include "data/synthetic_image.h"

#include <cmath>
#include <vector>

#include "tensor/rng.h"
#include "utils/logging.h"

namespace edde {
namespace {

/// One class prototype: a smooth random field plus an oriented grating whose
/// frequency/orientation depend on the class id, per channel.
std::vector<float> MakePrototype(int cls, int mode, int size, int channels,
                                 float field_weight, float grating_weight,
                                 Rng* rng) {
  std::vector<float> proto(static_cast<size_t>(channels * size * size));
  // Low-resolution field upsampled bilinearly.
  const int grid = 3;
  std::vector<float> field(static_cast<size_t>(channels * grid * grid));
  for (auto& v : field) v = static_cast<float>(rng->Normal(0.0, 1.0));

  const double angle = 2.0 * M_PI * (cls * 0.37 + mode * 0.13);
  const double freq = 1.0 + (cls % 4) * 0.7 + mode * 0.35;
  const double cx = std::cos(angle), sx = std::sin(angle);

  for (int c = 0; c < channels; ++c) {
    for (int y = 0; y < size; ++y) {
      for (int x = 0; x < size; ++x) {
        // Bilinear sample of the low-res field.
        const double fy = static_cast<double>(y) / (size - 1) * (grid - 1);
        const double fx = static_cast<double>(x) / (size - 1) * (grid - 1);
        const int y0 = static_cast<int>(fy), x0 = static_cast<int>(fx);
        const int y1 = std::min(y0 + 1, grid - 1);
        const int x1 = std::min(x0 + 1, grid - 1);
        const double wy = fy - y0, wx = fx - x0;
        auto f = [&](int yy, int xx) {
          return field[static_cast<size_t>((c * grid + yy) * grid + xx)];
        };
        const double smooth = (1 - wy) * ((1 - wx) * f(y0, x0) + wx * f(y0, x1)) +
                              wy * ((1 - wx) * f(y1, x0) + wx * f(y1, x1));
        // Class-coded grating.
        const double phase =
            freq * (cx * x + sx * y) * (2.0 * M_PI / size) + c * 0.9;
        const double grating = std::sin(phase);
        proto[static_cast<size_t>((c * size + y) * size + x)] =
            static_cast<float>(field_weight * smooth +
                               grating_weight * grating);
      }
    }
  }
  return proto;
}

/// Renders one instance of `proto` with shift/flip/noise into `dst`.
void RenderInstance(const std::vector<float>& proto, int size, int channels,
                    const SyntheticImageConfig& cfg, Rng* rng, float* dst) {
  const int shift_y = cfg.max_shift == 0
                          ? 0
                          : static_cast<int>(rng->UniformInt(2 * cfg.max_shift + 1)) -
                                cfg.max_shift;
  const int shift_x = cfg.max_shift == 0
                          ? 0
                          : static_cast<int>(rng->UniformInt(2 * cfg.max_shift + 1)) -
                                cfg.max_shift;
  const bool flip = cfg.flip && rng->Bernoulli(0.5);
  for (int c = 0; c < channels; ++c) {
    for (int y = 0; y < size; ++y) {
      for (int x = 0; x < size; ++x) {
        int sy = y + shift_y;
        int sx = x + shift_x;
        if (flip) sx = size - 1 - sx;
        float v = 0.0f;
        if (sy >= 0 && sy < size && sx >= 0 && sx < size) {
          v = proto[static_cast<size_t>((c * size + sy) * size + sx)];
        }
        v += static_cast<float>(rng->Normal(0.0, cfg.noise));
        dst[(c * size + y) * size + x] = v;
      }
    }
  }
}

Dataset Generate(const SyntheticImageConfig& cfg,
                 const std::vector<std::vector<float>>& protos, int count,
                 bool with_label_noise, const std::string& name, Rng* rng) {
  Tensor features(
      Shape{count, cfg.channels, cfg.image_size, cfg.image_size});
  std::vector<int> labels(static_cast<size_t>(count));
  const int64_t row =
      static_cast<int64_t>(cfg.channels) * cfg.image_size * cfg.image_size;
  for (int i = 0; i < count; ++i) {
    const int cls = static_cast<int>(rng->UniformInt(cfg.num_classes));
    const int mode = static_cast<int>(rng->UniformInt(cfg.modes_per_class));
    const auto& proto =
        protos[static_cast<size_t>(cls * cfg.modes_per_class + mode)];
    RenderInstance(proto, cfg.image_size, cfg.channels, cfg, rng,
                   features.data() + i * row);
    int label = cls;
    if (with_label_noise && rng->Bernoulli(cfg.label_noise)) {
      label = static_cast<int>(rng->UniformInt(cfg.num_classes));
    }
    labels[static_cast<size_t>(i)] = label;
  }
  return Dataset(name, std::move(features), std::move(labels),
                 cfg.num_classes);
}

}  // namespace

TrainTestSplit MakeSyntheticImageData(const SyntheticImageConfig& cfg) {
  EDDE_CHECK_GT(cfg.num_classes, 1);
  EDDE_CHECK_GT(cfg.modes_per_class, 0);
  EDDE_CHECK_GT(cfg.image_size, 2);
  Rng rng(cfg.seed);
  std::vector<std::vector<float>> protos;
  protos.reserve(static_cast<size_t>(cfg.num_classes * cfg.modes_per_class));
  for (int cls = 0; cls < cfg.num_classes; ++cls) {
    for (int m = 0; m < cfg.modes_per_class; ++m) {
      protos.push_back(MakePrototype(cls, m, cfg.image_size, cfg.channels,
                                     cfg.field_weight, cfg.grating_weight,
                                     &rng));
    }
  }
  TrainTestSplit split;
  split.train = Generate(cfg, protos, cfg.train_size,
                         /*with_label_noise=*/true, "synth_image/train", &rng);
  split.test = Generate(cfg, protos, cfg.test_size,
                        /*with_label_noise=*/false, "synth_image/test", &rng);
  return split;
}

}  // namespace edde
