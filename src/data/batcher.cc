#include "data/batcher.h"

#include <numeric>

#include "utils/logging.h"

namespace edde {

std::vector<std::vector<int64_t>> MakeBatches(int64_t n, int64_t batch_size,
                                              bool shuffle, Rng* rng) {
  EDDE_CHECK_GT(n, 0);
  EDDE_CHECK_GT(batch_size, 0);
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  if (shuffle) {
    EDDE_CHECK(rng != nullptr);
    rng->Shuffle(&order);
  }
  std::vector<std::vector<int64_t>> batches;
  for (int64_t start = 0; start < n; start += batch_size) {
    const int64_t end = std::min(n, start + batch_size);
    batches.emplace_back(order.begin() + start, order.begin() + end);
  }
  return batches;
}

}  // namespace edde
