#include "data/batcher.h"

#include <numeric>

#include "utils/logging.h"

namespace edde {

void BatchPlan::Build(int64_t n, int64_t batch_size, bool shuffle, Rng* rng) {
  EDDE_CHECK_GT(n, 0);
  EDDE_CHECK_GT(batch_size, 0);
  batch_size_ = batch_size;
  order_.resize(static_cast<size_t>(n));
  std::iota(order_.begin(), order_.end(), 0);
  if (shuffle) {
    EDDE_CHECK(rng != nullptr);
    rng->Shuffle(&order_);
  }
}

std::vector<std::vector<int64_t>> MakeBatches(int64_t n, int64_t batch_size,
                                              bool shuffle, Rng* rng) {
  BatchPlan plan;
  plan.Build(n, batch_size, shuffle, rng);
  std::vector<std::vector<int64_t>> batches;
  batches.reserve(static_cast<size_t>(plan.num_batches()));
  for (int64_t b = 0; b < plan.num_batches(); ++b) {
    const int64_t* idx = plan.batch(b);
    batches.emplace_back(idx, idx + plan.batch_len(b));
  }
  return batches;
}

}  // namespace edde
