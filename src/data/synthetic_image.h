#ifndef EDDE_DATA_SYNTHETIC_IMAGE_H_
#define EDDE_DATA_SYNTHETIC_IMAGE_H_

#include <cstdint>

#include "data/dataset.h"

namespace edde {

/// Procedural stand-in for CIFAR-10/100 (see DESIGN.md, substitution table).
///
/// Each class owns `modes_per_class` prototype images built from smooth
/// low-frequency random fields plus a class-specific oriented grating, so
/// classes are multi-modal and linearly inseparable. Instances add Gaussian
/// pixel noise, a random sub-pixel shift and an optional horizontal flip;
/// a fraction of labels is flipped uniformly (label noise). The defaults are
/// tuned so small ConvNets reach 60–90% accuracy — the regime in which the
/// paper's ensemble comparisons live.
struct SyntheticImageConfig {
  int num_classes = 10;     ///< 10 ~ CIFAR-10-like, 20+ ~ CIFAR-100-like.
  int train_size = 2048;
  int test_size = 1024;
  int image_size = 8;       ///< square images (paper: 32).
  int channels = 3;
  int modes_per_class = 2;  ///< prototypes per class (multi-modality).
  float noise = 0.8f;       ///< stddev of per-pixel Gaussian noise.
  /// Prototype composition: weight of the smooth low-frequency random field
  /// (fast for convnets to learn) vs the oriented grating (fine-grained,
  /// slow to learn). Tuning the ratio controls how many epochs a model
  /// needs before its accuracy saturates.
  float field_weight = 0.8f;
  float grating_weight = 1.0f;
  float label_noise = 0.04f;  ///< probability a training label is flipped.
  int max_shift = 1;        ///< random translation in pixels.
  bool flip = true;         ///< random horizontal flip.
  uint64_t seed = 42;
};

/// Generates the train/test pair. The test set is noise-free in labels
/// (generalization is measured against true classes) but uses the same
/// instance-noise process as training.
TrainTestSplit MakeSyntheticImageData(const SyntheticImageConfig& config);

}  // namespace edde

#endif  // EDDE_DATA_SYNTHETIC_IMAGE_H_
