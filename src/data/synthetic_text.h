#ifndef EDDE_DATA_SYNTHETIC_TEXT_H_
#define EDDE_DATA_SYNTHETIC_TEXT_H_

#include <cstdint>

#include "data/dataset.h"

namespace edde {

/// Procedural stand-in for the IMDB / MR sentiment datasets (see DESIGN.md).
///
/// The vocabulary is partitioned into positive tokens, negative tokens,
/// negator tokens and neutral filler. A review is mostly filler with a
/// handful of sentiment tokens; a negator directly before a sentiment token
/// inverts its contribution, so bigram-detecting convolutions (TextCNN's
/// strength) beat bag-of-words. The label is the sign of the summed
/// effective polarity, with optional label noise on the training split.
struct SyntheticTextConfig {
  int vocab_size = 200;      ///< includes PAD=0.
  int seq_len = 32;          ///< fixed (padded/truncated) review length.
  int train_size = 2048;
  int test_size = 1024;
  int sentiment_vocab = 24;  ///< tokens per polarity.
  int negator_vocab = 4;     ///< "not"-style tokens.
  double sentiment_rate = 0.18;  ///< prob. a position carries sentiment.
  double negation_prob = 0.25;   ///< prob. a sentiment token is negated.
  /// Probability that a sentiment mention agrees with the review's overall
  /// polarity. Reviews are polarity-dominated (as in IMDB/MR), so presence
  /// features — what max-over-time pooling can see — carry the label.
  double polarity_fidelity = 0.85;
  float label_noise = 0.05f;
  uint64_t seed = 42;
};

/// Token-id layout helpers (PAD first, then positive/negative/negator bands,
/// remainder is filler).
struct TextVocabLayout {
  int pad = 0;
  int pos_begin = 1;
  int pos_end = 0;  ///< exclusive
  int neg_begin = 0;
  int neg_end = 0;
  int negator_begin = 0;
  int negator_end = 0;
  int filler_begin = 0;
};

/// Computes the vocabulary band boundaries for a config.
TextVocabLayout GetVocabLayout(const SyntheticTextConfig& config);

/// Generates the binary-sentiment train/test pair. Features are (N, L)
/// token-id tensors suitable for TextCnn.
TrainTestSplit MakeSyntheticTextData(const SyntheticTextConfig& config);

}  // namespace edde

#endif  // EDDE_DATA_SYNTHETIC_TEXT_H_
