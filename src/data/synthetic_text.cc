#include "data/synthetic_text.h"

#include "tensor/rng.h"
#include "utils/logging.h"

namespace edde {

TextVocabLayout GetVocabLayout(const SyntheticTextConfig& cfg) {
  TextVocabLayout layout;
  layout.pos_begin = 1;
  layout.pos_end = layout.pos_begin + cfg.sentiment_vocab;
  layout.neg_begin = layout.pos_end;
  layout.neg_end = layout.neg_begin + cfg.sentiment_vocab;
  layout.negator_begin = layout.neg_end;
  layout.negator_end = layout.negator_begin + cfg.negator_vocab;
  layout.filler_begin = layout.negator_end;
  EDDE_CHECK_LT(layout.filler_begin, cfg.vocab_size)
      << "vocab too small for sentiment/negator bands";
  return layout;
}

namespace {

Dataset Generate(const SyntheticTextConfig& cfg, const TextVocabLayout& lo,
                 int count, bool with_label_noise, const std::string& name,
                 Rng* rng) {
  Tensor features(Shape{count, cfg.seq_len});
  std::vector<int> labels(static_cast<size_t>(count));
  const int filler_count = cfg.vocab_size - lo.filler_begin;

  for (int i = 0; i < count; ++i) {
    float* row = features.data() + static_cast<int64_t>(i) * cfg.seq_len;
    // The review's overall polarity is drawn first; individual sentiment
    // mentions agree with it with probability polarity_fidelity. A negated
    // mention expresses its effective polarity through the *opposite* token
    // band ("not good" in a negative review), so only models that read the
    // (negator, token) bigram resolve those mentions correctly.
    const bool review_positive = rng->Bernoulli(0.5);
    int sentiment_tokens = 0;
    int t = 0;
    while (t < cfg.seq_len) {
      if (rng->Bernoulli(cfg.sentiment_rate)) {
        const bool agrees = rng->Bernoulli(cfg.polarity_fidelity);
        const bool effective_positive = agrees == review_positive;
        const bool negated =
            t + 1 < cfg.seq_len && rng->Bernoulli(cfg.negation_prob);
        if (negated) {
          row[t++] = static_cast<float>(
              lo.negator_begin +
              rng->UniformInt(lo.negator_end - lo.negator_begin));
        }
        // Negation inverts the token's surface polarity.
        const bool surface_positive =
            negated ? !effective_positive : effective_positive;
        const int band_begin = surface_positive ? lo.pos_begin : lo.neg_begin;
        row[t++] = static_cast<float>(band_begin +
                                      rng->UniformInt(cfg.sentiment_vocab));
        ++sentiment_tokens;
      } else {
        row[t++] = static_cast<float>(lo.filler_begin +
                                      rng->UniformInt(filler_count));
      }
    }
    if (sentiment_tokens == 0) {
      // Guarantee at least one sentiment mention (position 0).
      const int band_begin = review_positive ? lo.pos_begin : lo.neg_begin;
      row[0] = static_cast<float>(band_begin +
                                  rng->UniformInt(cfg.sentiment_vocab));
    }

    int label = review_positive ? 1 : 0;
    if (with_label_noise && rng->Bernoulli(cfg.label_noise)) label = 1 - label;
    labels[static_cast<size_t>(i)] = label;
  }
  return Dataset(name, std::move(features), std::move(labels),
                 /*num_classes=*/2);
}

}  // namespace

TrainTestSplit MakeSyntheticTextData(const SyntheticTextConfig& cfg) {
  EDDE_CHECK_GT(cfg.seq_len, 2);
  const TextVocabLayout layout = GetVocabLayout(cfg);
  Rng rng(cfg.seed);
  TrainTestSplit split;
  split.train = Generate(cfg, layout, cfg.train_size,
                         /*with_label_noise=*/true, "synth_text/train", &rng);
  split.test = Generate(cfg, layout, cfg.test_size,
                        /*with_label_noise=*/false, "synth_text/test", &rng);
  return split;
}

}  // namespace edde
