#ifndef EDDE_TENSOR_OPS_H_
#define EDDE_TENSOR_OPS_H_

#include <cstdint>
#include <vector>

#include "tensor/gemm.h"
#include "tensor/quantize.h"
#include "tensor/tensor.h"

namespace edde {

// ---------------------------------------------------------------------------
// Dense linear algebra
// ---------------------------------------------------------------------------

/// C = alpha * op(A) @ op(B) + beta * C, with op controlled by the transpose
/// flags. A is (M, K) after op, B is (K, N) after op, C must be (M, N).
/// Packed, cache-blocked, SIMD row-major implementation (tensor/gemm.h).
void Gemm(bool trans_a, bool trans_b, float alpha, const Tensor& a,
          const Tensor& b, float beta, Tensor* c);

/// Gemm with a fused epilogue (bias broadcast and/or ReLU) applied to the
/// final C tiles, so layer forward passes skip the extra activation sweep.
void GemmEx(bool trans_a, bool trans_b, float alpha, const Tensor& a,
            const Tensor& b, float beta, Tensor* c,
            const GemmEpilogue& epilogue);

/// Returns A @ B for 2-D tensors.
Tensor MatMul(const Tensor& a, const Tensor& b);

// ---------------------------------------------------------------------------
// Elementwise / BLAS-1
// ---------------------------------------------------------------------------

/// y += alpha * x (shapes must match).
void Axpy(float alpha, const Tensor& x, Tensor* y);

/// x *= alpha.
void Scale(float alpha, Tensor* x);

/// out = a + b (allocates).
Tensor Add(const Tensor& a, const Tensor& b);

/// out = a - b (allocates).
Tensor Sub(const Tensor& a, const Tensor& b);

/// out = a ⊙ b, elementwise product (allocates).
Tensor Mul(const Tensor& a, const Tensor& b);

/// Dot product of two equal-size tensors (flattened).
double Dot(const Tensor& a, const Tensor& b);

/// Squared L2 norm of the flattened tensor.
double SquaredNorm(const Tensor& x);

// ---------------------------------------------------------------------------
// Row-wise ops on (N, K) matrices
// ---------------------------------------------------------------------------

/// Numerically stabilized softmax of one row of `k` logits into `orow`.
/// Softmax() and the fused softmax+cross-entropy in nn/loss.cc both call
/// this, which is what keeps the loss's probs field bit-identical to
/// Softmax() output.
void SoftmaxRow(const float* row, int64_t k, float* orow);

/// Row-wise softmax of logits (N, K); numerically stabilized.
Tensor Softmax(const Tensor& logits);

/// Row-wise log-softmax of logits (N, K).
Tensor LogSoftmax(const Tensor& logits);

/// Per-row argmax of an (N, K) matrix.
std::vector<int> ArgmaxRows(const Tensor& m);

/// Per-row L2 distance between two (N, K) matrices:
/// out[i] = ||a_i - b_i||_2. This is the distance inside the paper's
/// diversity measure (Eq. 2) and diversity loss (Eq. 10).
std::vector<float> RowL2Distance(const Tensor& a, const Tensor& b);

// ---------------------------------------------------------------------------
// Convolution via im2col (NCHW layout)
// ---------------------------------------------------------------------------

/// Geometry of a 2-D convolution (square kernels).
struct ConvGeom {
  int64_t in_channels = 0;
  int64_t out_channels = 0;
  int64_t kernel = 3;
  int64_t stride = 1;
  int64_t padding = 1;

  /// Output spatial extent for input extent `in`.
  int64_t OutExtent(int64_t in) const {
    return (in + 2 * padding - kernel) / stride + 1;
  }
};

/// Unrolls one sample (C, H, W) into columns (C*k*k, OH*OW) for gemm-based
/// convolution. `cols` must be preallocated with that shape.
void Im2Col(const float* input, int64_t channels, int64_t height,
            int64_t width, const ConvGeom& geom, float* cols);

/// Adjoint of Im2Col: accumulates columns (C*k*k, OH*OW) back into the
/// (C, H, W) image. `input_grad` must be zeroed by the caller beforehand.
void Col2Im(const float* cols, int64_t channels, int64_t height,
            int64_t width, const ConvGeom& geom, float* input_grad);

/// Forward 2-D convolution: input (N, C, H, W), weight (OC, C, k, k),
/// optional bias (OC) -> output (N, OC, OH, OW).
Tensor Conv2dForward(const Tensor& input, const Tensor& weight,
                     const Tensor& bias, const ConvGeom& geom);

/// Quantized forward 2-D convolution: same contract as Conv2dForward but
/// the kernel is a per-channel int8 matrix (OC rows of depth C·k²; see
/// tensor/quantize.h). Inference only — there is no int8 backward.
Tensor Conv2dForwardInt8(const Tensor& input, const QuantizedMatrix& weight,
                         const Tensor& bias, const ConvGeom& geom);

/// Backward 2-D convolution. Accumulates into weight_grad/bias_grad
/// (callers zero them at the start of each step) and returns input gradient.
Tensor Conv2dBackward(const Tensor& input, const Tensor& weight,
                      const Tensor& grad_out, const ConvGeom& geom,
                      Tensor* weight_grad, Tensor* bias_grad);

// ---------------------------------------------------------------------------
// 1-D convolution over sequences (N, C, L), for TextCNN
// ---------------------------------------------------------------------------

/// Geometry of a 1-D convolution.
struct Conv1dGeom {
  int64_t in_channels = 0;
  int64_t out_channels = 0;
  int64_t kernel = 3;
  int64_t stride = 1;
  int64_t padding = 0;

  int64_t OutExtent(int64_t in) const {
    return (in + 2 * padding - kernel) / stride + 1;
  }
};

/// Forward 1-D convolution: input (N, C, L), weight (OC, C, k), bias (OC)
/// -> output (N, OC, OL).
Tensor Conv1dForward(const Tensor& input, const Tensor& weight,
                     const Tensor& bias, const Conv1dGeom& geom);

/// Backward 1-D convolution; mirrors Conv2dBackward.
Tensor Conv1dBackward(const Tensor& input, const Tensor& weight,
                      const Tensor& grad_out, const Conv1dGeom& geom,
                      Tensor* weight_grad, Tensor* bias_grad);

// ---------------------------------------------------------------------------
// Pooling
// ---------------------------------------------------------------------------

/// 2x2-style max pooling with window == stride. Input (N, C, H, W) ->
/// (N, C, H/window, W/window). `argmax` (same shape as output, flat indices
/// into the input) is filled for the backward pass.
Tensor MaxPool2dForward(const Tensor& input, int64_t window,
                        std::vector<int64_t>* argmax);

/// Scatter of output gradients through the recorded argmax indices.
Tensor MaxPool2dBackward(const Shape& input_shape, const Tensor& grad_out,
                         const std::vector<int64_t>& argmax);

/// Average pooling with window == stride: (N, C, H, W) ->
/// (N, C, H/window, W/window).
Tensor AvgPool2dForward(const Tensor& input, int64_t window);

/// Backward of AvgPool2dForward.
Tensor AvgPool2dBackward(const Shape& input_shape, const Tensor& grad_out,
                         int64_t window);

/// Spatial mean per channel: (N, C, H, W) -> (N, C).
Tensor GlobalAvgPool2dForward(const Tensor& input);

/// Backward of global average pooling.
Tensor GlobalAvgPool2dBackward(const Shape& input_shape,
                               const Tensor& grad_out);

/// Max over the sequence axis: (N, C, L) -> (N, C), recording argmax
/// positions for backward. This is TextCNN's max-over-time pooling.
Tensor MaxOverTimeForward(const Tensor& input, std::vector<int64_t>* argmax);

/// Backward of max-over-time pooling.
Tensor MaxOverTimeBackward(const Shape& input_shape, const Tensor& grad_out,
                           const std::vector<int64_t>& argmax);

// ---------------------------------------------------------------------------
// Misc
// ---------------------------------------------------------------------------

/// Concatenates 4-D tensors along the channel axis (axis 1).
Tensor ConcatChannels(const Tensor& a, const Tensor& b);

/// Splits the channel-axis gradient of ConcatChannels back into two parts.
void SplitChannelsGrad(const Tensor& grad_out, int64_t channels_a,
                       Tensor* grad_a, Tensor* grad_b);

}  // namespace edde

#endif  // EDDE_TENSOR_OPS_H_
