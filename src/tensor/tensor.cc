#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

#include "utils/logging.h"
#include "utils/metrics.h"

namespace edde {

Tensor::Tensor(Shape shape) : shape_(std::move(shape)) {
  // Heap-traffic telemetry for the kernel hot path: bench_kernels reads
  // these to show that steady-state training allocates no per-batch tensor
  // scratch (the arena absorbs it).
  static Counter* const allocs =
      MetricsRegistry::Global().GetCounter("tensor.allocs");
  static Counter* const alloc_bytes =
      MetricsRegistry::Global().GetCounter("tensor.alloc_bytes");
  allocs->Increment();
  alloc_bytes->Increment(
      static_cast<int64_t>(sizeof(float)) * shape_.num_elements());
  data_ = std::shared_ptr<float[]>(new float[shape_.num_elements()]);
}

Tensor::Tensor(Shape shape, float value) : Tensor(std::move(shape)) {
  Fill(value);
}

Tensor::Tensor(Shape shape, std::initializer_list<float> values)
    : Tensor(std::move(shape)) {
  EDDE_CHECK_EQ(static_cast<int64_t>(values.size()), num_elements());
  std::copy(values.begin(), values.end(), data());
}

Tensor::Tensor(Shape shape, const std::vector<float>& values)
    : Tensor(std::move(shape)) {
  EDDE_CHECK_EQ(static_cast<int64_t>(values.size()), num_elements());
  std::copy(values.begin(), values.end(), data());
}

Tensor Tensor::Clone() const {
  if (empty()) return Tensor();
  Tensor out(shape_);
  std::memcpy(out.data(), data(), sizeof(float) * num_elements());
  return out;
}

float& Tensor::at(int64_t i) {
  EDDE_CHECK_GE(i, 0);
  EDDE_CHECK_LT(i, num_elements());
  return data_[i];
}

float Tensor::at(int64_t i) const {
  EDDE_CHECK_GE(i, 0);
  EDDE_CHECK_LT(i, num_elements());
  return data_[i];
}

float& Tensor::at(int64_t i, int64_t j) {
  EDDE_CHECK_EQ(shape_.rank(), 2);
  return data_[i * shape_.dim(1) + j];
}

float Tensor::at(int64_t i, int64_t j) const {
  EDDE_CHECK_EQ(shape_.rank(), 2);
  return data_[i * shape_.dim(1) + j];
}

float& Tensor::at(int64_t n, int64_t c, int64_t h, int64_t w) {
  EDDE_CHECK_EQ(shape_.rank(), 4);
  return data_[((n * shape_.dim(1) + c) * shape_.dim(2) + h) * shape_.dim(3) +
               w];
}

float Tensor::at(int64_t n, int64_t c, int64_t h, int64_t w) const {
  EDDE_CHECK_EQ(shape_.rank(), 4);
  return data_[((n * shape_.dim(1) + c) * shape_.dim(2) + h) * shape_.dim(3) +
               w];
}

void Tensor::Fill(float value) {
  std::fill(data(), data() + num_elements(), value);
}

void Tensor::FillNormal(Rng* rng, float mean, float stddev) {
  float* p = data();
  const int64_t n = num_elements();
  for (int64_t i = 0; i < n; ++i) {
    p[i] = static_cast<float>(rng->Normal(mean, stddev));
  }
}

void Tensor::FillUniform(Rng* rng, float lo, float hi) {
  float* p = data();
  const int64_t n = num_elements();
  for (int64_t i = 0; i < n; ++i) {
    p[i] = static_cast<float>(rng->Uniform(lo, hi));
  }
}

Tensor Tensor::Reshape(Shape new_shape) const {
  EDDE_CHECK_EQ(new_shape.num_elements(), num_elements())
      << "reshape " << shape_ << " -> " << new_shape;
  return Tensor(std::move(new_shape), data_);
}

void Tensor::CopyFrom(const Tensor& other) {
  EDDE_CHECK(shape_ == other.shape_)
      << "CopyFrom shape mismatch: " << shape_ << " vs " << other.shape_;
  std::memcpy(data(), other.data(), sizeof(float) * num_elements());
}

void Tensor::Apply(const std::function<float(float)>& fn) {
  float* p = data();
  const int64_t n = num_elements();
  for (int64_t i = 0; i < n; ++i) p[i] = fn(p[i]);
}

double Tensor::Sum() const {
  double acc = 0.0;
  const float* p = data();
  const int64_t n = num_elements();
  for (int64_t i = 0; i < n; ++i) acc += p[i];
  return acc;
}

double Tensor::Mean() const {
  const int64_t n = num_elements();
  return n == 0 ? 0.0 : Sum() / static_cast<double>(n);
}

float Tensor::AbsMax() const {
  float best = 0.0f;
  const float* p = data();
  const int64_t n = num_elements();
  for (int64_t i = 0; i < n; ++i) best = std::max(best, std::fabs(p[i]));
  return best;
}

std::string Tensor::ToString(int64_t max_elements) const {
  std::ostringstream os;
  os << "Tensor" << shape_ << " [";
  const int64_t n = std::min(num_elements(), max_elements);
  for (int64_t i = 0; i < n; ++i) {
    if (i > 0) os << ", ";
    os << data_[i];
  }
  if (n < num_elements()) os << ", ...";
  os << "]";
  return os.str();
}

}  // namespace edde
