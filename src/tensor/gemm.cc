#include "tensor/gemm.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>

#include "utils/arena.h"
#include "utils/logging.h"
#include "utils/run_manifest.h"
#include "utils/threadpool.h"

namespace edde {

using gemm_internal::kKC;
using gemm_internal::kMC;
using gemm_internal::kMR;
using gemm_internal::kNR;

namespace {

int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }

// Row-grain targeting roughly `target_work` scalar ops per chunk; mirrors
// the helper in ops.cc so tiny problems stay on the serial path.
int64_t RowGrain(int64_t work_per_row, int64_t target_work) {
  if (work_per_row < 1) work_per_row = 1;
  const int64_t grain = target_work / work_per_row;
  return grain < 1 ? 1 : grain;
}

// ---------------------------------------------------------------------------
// Kernel dispatch
// ---------------------------------------------------------------------------

GemmKernel ResolveDefaultKernel() {
  GemmKernel kernel =
      gemm_internal::Avx2Available() ? GemmKernel::kAvx2 : GemmKernel::kPortable;
  const char* env = std::getenv("EDDE_GEMM_KERNEL");
  if (env != nullptr && env[0] != '\0') {
    const std::string want(env);
    if (want == "scalar") {
      kernel = GemmKernel::kScalar;
    } else if (want == "portable") {
      kernel = GemmKernel::kPortable;
    } else if (want == "avx2") {
      if (gemm_internal::Avx2Available()) {
        kernel = GemmKernel::kAvx2;
      } else {
        EDDE_LOG(WARNING) << "EDDE_GEMM_KERNEL=avx2 but the CPU lacks "
                             "AVX2/FMA; using portable";
        kernel = GemmKernel::kPortable;
      }
    } else if (want != "auto") {
      EDDE_LOG(WARNING) << "unknown EDDE_GEMM_KERNEL '" << want
                        << "'; using " << GemmKernelName(kernel);
    }
  }
  return kernel;
}

// kAuto until first use or an explicit SetGemmKernel.
std::atomic<GemmKernel> g_kernel{GemmKernel::kAuto};

}  // namespace

GemmKernel ActiveGemmKernel() {
  GemmKernel kernel = g_kernel.load(std::memory_order_acquire);
  if (kernel != GemmKernel::kAuto) return kernel;
  const GemmKernel resolved = ResolveDefaultKernel();
  GemmKernel expected = GemmKernel::kAuto;
  if (g_kernel.compare_exchange_strong(expected, resolved,
                                       std::memory_order_acq_rel)) {
    ManifestSetFlag("gemm_kernel", GemmKernelName(resolved));
    return resolved;
  }
  return expected;
}

const char* GemmKernelName(GemmKernel kernel) {
  switch (kernel) {
    case GemmKernel::kScalar:
      return "scalar";
    case GemmKernel::kPortable:
      return "portable";
    case GemmKernel::kAvx2:
      return "avx2";
    case GemmKernel::kAuto:
      return "auto";
  }
  return "unknown";
}

void SetGemmKernel(GemmKernel kernel) {
  if (kernel == GemmKernel::kAvx2 && !gemm_internal::Avx2Available()) {
    EDDE_LOG(WARNING) << "SetGemmKernel(kAvx2) without AVX2/FMA support; "
                         "using portable";
    kernel = GemmKernel::kPortable;
  }
  g_kernel.store(kernel, std::memory_order_release);
  if (kernel != GemmKernel::kAuto) {
    ManifestSetFlag("gemm_kernel", GemmKernelName(kernel));
  }
}

namespace {

// ---------------------------------------------------------------------------
// Scalar reference path — the pre-packing cache-blocked kernel, kept
// verbatim (minus the vectorization-hostile zero-skip) so the fallback is
// bit-identical to the original implementation and serves as the baseline
// for bench_kernels' speedup headline.
// ---------------------------------------------------------------------------

void GemmBlockNN(int64_t m, int64_t n, int64_t k, float alpha, const float* a,
                 int64_t lda, const float* b, int64_t ldb, float* c,
                 int64_t ldc) {
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * lda;
    float* crow = c + i * ldc;
    for (int64_t p = 0; p < k; ++p) {
      const float av = alpha * arow[p];
      const float* brow = b + p * ldb;
      for (int64_t j = 0; j < n; ++j) {
        crow[j] += av * brow[j];
      }
    }
  }
}

void GemmScalar(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
                float alpha, const float* a, int64_t lda_in, const float* b,
                int64_t ldb_in, float beta, float* c, int64_t ldc) {
  if (beta == 0.0f) {
    for (int64_t i = 0; i < m; ++i) {
      std::memset(c + i * ldc, 0, sizeof(float) * static_cast<size_t>(n));
    }
  } else if (beta != 1.0f) {
    for (int64_t i = 0; i < m; ++i) {
      float* crow = c + i * ldc;
      for (int64_t j = 0; j < n; ++j) crow[j] *= beta;
    }
  }

  // Materialize transposed operands once (into arena scratch rather than
  // fresh Tensors); the copies are small relative to the O(MNK) work and
  // keep this path a single kernel variant.
  ArenaScope scope;
  const float* pa = a;
  const float* pb = b;
  int64_t lda = lda_in;
  int64_t ldb = ldb_in;
  if (trans_a) {
    float* a_copy = scope.AllocFloats(m * k);
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t p = 0; p < k; ++p) {
        a_copy[i * k + p] = a[p * lda_in + i];
      }
    }
    pa = a_copy;
    lda = k;
  }
  if (trans_b) {
    float* b_copy = scope.AllocFloats(k * n);
    for (int64_t p = 0; p < k; ++p) {
      for (int64_t j = 0; j < n; ++j) {
        b_copy[p * n + j] = b[j * ldb_in + p];
      }
    }
    pb = b_copy;
    ldb = n;
  }

  // Cache blocking; the row dimension is additionally split across the
  // thread pool. Each chunk owns a disjoint set of C rows and walks the
  // k/n blocks in the same serial order as the single-threaded code, so the
  // accumulation order per row — and hence the result — is bit-identical
  // regardless of thread count.
  constexpr int64_t kBlockM = 64;
  constexpr int64_t kBlockN = 256;
  constexpr int64_t kBlockK = 64;
  const int64_t grain = std::max(kBlockM, RowGrain(n * k, 1 << 18));
  ParallelFor(0, m, grain, [&](int64_t r0, int64_t r1) {
    for (int64_t i0 = r0; i0 < r1; i0 += kBlockM) {
      const int64_t mb = std::min(kBlockM, r1 - i0);
      for (int64_t p0 = 0; p0 < k; p0 += kBlockK) {
        const int64_t kblk = std::min(kBlockK, k - p0);
        for (int64_t j0 = 0; j0 < n; j0 += kBlockN) {
          const int64_t nb = std::min(kBlockN, n - j0);
          GemmBlockNN(mb, nb, kblk, alpha, pa + i0 * lda + p0, lda,
                      pb + p0 * ldb + j0, ldb, c + i0 * ldc + j0, ldc);
        }
      }
    }
  });
}

// Epilogue as a separate pass; the scalar path reproduces the pre-fusion
// layer behavior (gemm, then bias loop) bit for bit.
void ApplyEpilogueScalar(int64_t m, int64_t n, float* c, int64_t ldc,
                         const GemmEpilogue& epi) {
  for (int64_t i = 0; i < m; ++i) {
    float* crow = c + i * ldc;
    const float row_bias =
        epi.bias == GemmEpilogue::Bias::kPerRow ? epi.bias_data[i] : 0.0f;
    for (int64_t j = 0; j < n; ++j) {
      float v = crow[j];
      if (epi.bias == GemmEpilogue::Bias::kPerCol) {
        v += epi.bias_data[j];
      } else if (epi.bias == GemmEpilogue::Bias::kPerRow) {
        v += row_bias;
      }
      if (epi.relu) v = v > 0.0f ? v : 0.0f;
      crow[j] = v;
    }
  }
}

// ---------------------------------------------------------------------------
// Packed path
// ---------------------------------------------------------------------------
//
// Layouts (see DESIGN.md §10):
//   A panels: for each group of kMR rows, kc steps of kMR contiguous
//     floats: ap[panel][kk][i] = alpha * opA(row0 + panel*kMR + i, pc + kk),
//     zero-padded past the matrix edge. Folding alpha into the pack keeps
//     the micro-kernel multiply order identical to `av = alpha * a` in the
//     scalar kernel.
//   B panels: for each group of kNR columns, kc steps of kNR contiguous
//     floats: bp[panel][kk][j] = opB(pc + kk, panel*kNR + j), zero-padded.
//
// Both packs absorb the transpose flags, so transposed operands cost a
// strided read during packing instead of a materialized copy.

void PackA(bool trans_a, const float* a, int64_t lda, int64_t i0, int64_t pc,
           int64_t mb, int64_t kc, float alpha, float* dst) {
  for (int64_t panel = 0; panel < CeilDiv(mb, kMR); ++panel) {
    const int64_t r0 = panel * kMR;
    const int64_t mr = std::min(kMR, mb - r0);
    float* out = dst + r0 * kc;
    if (!trans_a) {
      for (int64_t kk = 0; kk < kc; ++kk) {
        const float* src = a + (i0 + r0) * lda + pc + kk;
        for (int64_t i = 0; i < mr; ++i) out[i] = alpha * src[i * lda];
        for (int64_t i = mr; i < kMR; ++i) out[i] = 0.0f;
        out += kMR;
      }
    } else {
      // Stored A is (k, m): opA(i, p) = a[p * lda + i]; consecutive i are
      // contiguous in memory, so packing reads kMR-wide runs.
      for (int64_t kk = 0; kk < kc; ++kk) {
        const float* src = a + (pc + kk) * lda + i0 + r0;
        for (int64_t i = 0; i < mr; ++i) out[i] = alpha * src[i];
        for (int64_t i = mr; i < kMR; ++i) out[i] = 0.0f;
        out += kMR;
      }
    }
  }
}

void PackB(bool trans_b, const float* b, int64_t ldb, int64_t pc, int64_t kc,
           int64_t n, float* dst) {
  for (int64_t panel = 0; panel < CeilDiv(n, kNR); ++panel) {
    const int64_t c0 = panel * kNR;
    const int64_t nr = std::min(kNR, n - c0);
    float* out = dst + c0 * kc;
    if (!trans_b) {
      for (int64_t kk = 0; kk < kc; ++kk) {
        const float* src = b + (pc + kk) * ldb + c0;
        for (int64_t j = 0; j < nr; ++j) out[j] = src[j];
        for (int64_t j = nr; j < kNR; ++j) out[j] = 0.0f;
        out += kNR;
      }
    } else {
      // Stored B is (n, k): opB(p, j) = b[j * ldb + p].
      for (int64_t kk = 0; kk < kc; ++kk) {
        const float* src = b + c0 * ldb + pc + kk;
        for (int64_t j = 0; j < nr; ++j) out[j] = src[j * ldb];
        for (int64_t j = nr; j < kNR; ++j) out[j] = 0.0f;
        out += kNR;
      }
    }
  }
}

// Portable micro-kernel: the same 6x16 tile as the AVX2 kernel in plain
// loops the compiler can vectorize (SSE2 at the default baseline, AVX2
// under -march=x86-64-v3).
void MicroKernelPortable(int64_t kc, const float* ap, const float* bp,
                         float* acc) {
  for (int64_t kk = 0; kk < kc; ++kk) {
    const float* arow = ap + kk * kMR;
    const float* brow = bp + kk * kNR;
    for (int64_t i = 0; i < kMR; ++i) {
      const float av = arow[i];
      float* crow = acc + i * kNR;
#pragma omp simd
      for (int64_t j = 0; j < kNR; ++j) {
        crow[j] += av * brow[j];
      }
    }
  }
}

// Folds one micro-tile of accumulated products into C. `first` applies the
// beta scaling (beta == 0 is a plain store, so C may start uninitialized);
// `last` applies the fused epilogue. Edge tiles clip to mr x nr — the
// padded lanes of `acc` are simply dropped.
void MergeTile(const float* acc, float* c, int64_t ldc, int64_t mr,
               int64_t nr, float beta, bool first, bool last,
               const GemmEpilogue& epi, int64_t i0, int64_t j0) {
  for (int64_t i = 0; i < mr; ++i) {
    float* crow = c + i * ldc;
    const float* arow = acc + i * kNR;
    if (first) {
      if (beta == 0.0f) {
#pragma omp simd
        for (int64_t j = 0; j < nr; ++j) crow[j] = arow[j];
      } else if (beta == 1.0f) {
#pragma omp simd
        for (int64_t j = 0; j < nr; ++j) crow[j] += arow[j];
      } else {
#pragma omp simd
        for (int64_t j = 0; j < nr; ++j) crow[j] = beta * crow[j] + arow[j];
      }
    } else {
#pragma omp simd
      for (int64_t j = 0; j < nr; ++j) crow[j] += arow[j];
    }
    if (last && !epi.empty()) {
      const float row_bias =
          epi.bias == GemmEpilogue::Bias::kPerRow ? epi.bias_data[i0 + i]
                                                  : 0.0f;
      const float* col_bias = epi.bias == GemmEpilogue::Bias::kPerCol
                                  ? epi.bias_data + j0
                                  : nullptr;
#pragma omp simd
      for (int64_t j = 0; j < nr; ++j) {
        float v = crow[j] + (col_bias != nullptr ? col_bias[j] : row_bias);
        if (epi.relu) v = v > 0.0f ? v : 0.0f;
        crow[j] = v;
      }
    }
  }
}

void GemmPacked(GemmKernel kernel, bool trans_a, bool trans_b, int64_t m,
                int64_t n, int64_t k, float alpha, const float* a,
                int64_t lda, const float* b, int64_t ldb, float beta,
                float* c, int64_t ldc, const GemmEpilogue& epi) {
  const bool use_avx2 = kernel == GemmKernel::kAvx2;
  // One shared B panel per k block, packed serially by the caller; A blocks
  // are packed per worker chunk. C rows are written by exactly one chunk
  // and the k blocks advance in the same serial order for every chunking,
  // so results are bit-identical for any thread count and grain.
  ArenaScope scope;
  float* bpack = scope.AllocFloats(kKC * CeilDiv(n, kNR) * kNR);
  const int64_t grain = std::max(kMC, RowGrain(n * k, 1 << 18));
  for (int64_t pc = 0; pc < k; pc += kKC) {
    const int64_t kc = std::min(kKC, k - pc);
    PackB(trans_b, b, ldb, pc, kc, n, bpack);
    const bool first = pc == 0;
    const bool last = pc + kc >= k;
    ParallelFor(0, m, grain, [&](int64_t r0, int64_t r1) {
      ArenaScope worker_scope;
      float* apack = worker_scope.AllocFloats(kMC * kc);
      alignas(64) float acc[kMR * kNR];
      for (int64_t ic = r0; ic < r1; ic += kMC) {
        const int64_t mb = std::min(kMC, r1 - ic);
        PackA(trans_a, a, lda, ic, pc, mb, kc, alpha, apack);
        for (int64_t jr = 0; jr < n; jr += kNR) {
          const int64_t nr = std::min(kNR, n - jr);
          const float* bsub = bpack + jr * kc;
          for (int64_t ir = 0; ir < mb; ir += kMR) {
            const int64_t mr = std::min(kMR, mb - ir);
            const float* asub = apack + ir * kc;
            if (use_avx2) {
              gemm_internal::MicroKernelAvx2(kc, asub, bsub, acc);
            } else {
              std::memset(acc, 0, sizeof(acc));
              MicroKernelPortable(kc, asub, bsub, acc);
            }
            MergeTile(acc, c + (ic + ir) * ldc + jr, ldc, mr, nr, beta,
                      first, last, epi, ic + ir, jr);
          }
        }
      }
    });
  }
}

}  // namespace

void GemmRaw(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
             float alpha, const float* a, int64_t lda, const float* b,
             int64_t ldb, float beta, float* c, int64_t ldc,
             const GemmEpilogue& epilogue) {
  if (m <= 0 || n <= 0) return;
  if (epilogue.bias != GemmEpilogue::Bias::kNone) {
    EDDE_CHECK(epilogue.bias_data != nullptr) << "bias epilogue without data";
  }
  if (k <= 0) {
    // Degenerate inner dimension: C = beta * C plus the epilogue.
    for (int64_t i = 0; i < m; ++i) {
      float* crow = c + i * ldc;
      for (int64_t j = 0; j < n; ++j) {
        crow[j] = beta == 0.0f ? 0.0f : beta * crow[j];
      }
    }
    ApplyEpilogueScalar(m, n, c, ldc, epilogue);
    return;
  }
  const GemmKernel kernel = ActiveGemmKernel();
  if (kernel == GemmKernel::kScalar) {
    GemmScalar(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, beta, c,
               ldc);
    if (!epilogue.empty()) ApplyEpilogueScalar(m, n, c, ldc, epilogue);
    return;
  }
  GemmPacked(kernel, trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, beta,
             c, ldc, epilogue);
}

}  // namespace edde
