#ifndef EDDE_TENSOR_QUANTIZE_H_
#define EDDE_TENSOR_QUANTIZE_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace edde {

// ---------------------------------------------------------------------------
// fp16 artifact storage (see DESIGN.md §13)
// ---------------------------------------------------------------------------
//
// IEEE binary16 with round-to-nearest-even, implemented as scalar bit
// manipulation so conversions are bit-identical on every build (no F16C
// dependency, no flush-to-zero surprises). Used by ensemble_io's fp16
// sections; the in-memory compute type stays float32.

/// float32 -> binary16 (RNE; overflow saturates to ±inf, NaN is preserved).
uint16_t FloatToHalf(float value);

/// binary16 -> float32 (exact; subnormals and ±inf/NaN round-trip).
float HalfToFloat(uint16_t half);

void FloatsToHalfs(const float* src, uint16_t* dst, size_t count);
void HalfsToFloats(const uint16_t* src, float* dst, size_t count);

// ---------------------------------------------------------------------------
// int8 inference quantization (see DESIGN.md §13)
// ---------------------------------------------------------------------------
//
// Weights: symmetric per-output-channel int8 with codes clamped to
// ±kWeightQuantMax (7-bit magnitudes). The reduced range is what lets the
// AVX2 kernel use vpmaddubsw without int16 saturation: u8·s8 pair sums are
// bounded by 2·255·63 = 32130 < 32767.
//
// Activations: dynamic per-row asymmetric u8 with zero point z, so
// x ≈ s_a (q - z), over the row's [min, max] range nudged to include
// zero (keeps z inside [0, 255] for one-sided rows and every
// representation error ≤ s_a/2). The affine form keeps ReLU outputs
// (all ≥ 0) at full 8-bit resolution. The zero point is corrected
// exactly via the
// precomputed per-channel weight code sums:
//   y[i,j] = s_a[i]·s_w[j]·(Σ_k q[i,k]·w[j,k] − z_i·Σ_k w[j,k]) + bias[j]
// Integer accumulation is exact, so the int32 matrix — and therefore the
// float output — is bit-identical for every kernel tier and thread count.

/// Weight codes live in [-kWeightQuantMax, kWeightQuantMax].
constexpr int32_t kWeightQuantMax = 63;

/// Reduction depths accepted by GemmInt8. Bounds the exact int32
/// accumulation: k·255·63 < 2^31 requires k < 133672.
constexpr int64_t kInt8MaxDepth = 131072;

/// Weight rows are stored padded to a multiple of this many bytes
/// (zero-filled), the chunk the AVX2 kernel consumes per step.
constexpr int64_t kInt8KStride = 32;

/// A per-channel-quantized weight matrix: `rows` output channels, each a
/// length-`cols` reduction vector stored row-major with stride `stride`
/// (cols padded to kInt8KStride with zero codes).
struct QuantizedMatrix {
  int64_t rows = 0;
  int64_t cols = 0;
  int64_t stride = 0;
  std::vector<int8_t> data;       ///< rows x stride codes, zero padded
  std::vector<float> scales;      ///< per-row dequantization scale
  std::vector<int32_t> row_sums;  ///< per-row Σ codes (zero-point correction)

  bool empty() const { return rows == 0; }
  const int8_t* row(int64_t r) const {
    return data.data() + static_cast<size_t>(r * stride);
  }
};

/// Quantizes a row-major (rows, cols) float matrix, one scale per row:
/// scale = max|row| / kWeightQuantMax (1.0 for all-zero rows), codes
/// round-to-nearest and clamp to ±kWeightQuantMax.
QuantizedMatrix QuantizeWeightsPerChannel(const float* w, int64_t rows,
                                          int64_t cols);

/// Tensor overload: dim 0 indexes output channels, the remaining dims
/// flatten into the reduction axis — matches Dense's (out, in) weight and
/// Conv2d's (OC, C, k, k) kernel viewed as (OC, C·k²).
QuantizedMatrix QuantizeWeightsPerChannel(const Tensor& w);

/// Reconstructs the float matrix (rows x cols, unpadded) from the codes.
/// Per-element error is bounded by scales[row] / 2.
void DequantizeWeights(const QuantizedMatrix& q, float* out);

/// Per-row activation quantization result: x ≈ scale · (q − zero).
struct QuantizedRowParams {
  float scale = 1.0f;
  int32_t zero = 0;
};

/// Quantizes one activation row of `k` values read at `src_stride` (1 for
/// contiguous rows, the leading dimension for transposed reads) into u8
/// codes. `dst` receives `padded_k` bytes; the [k, padded_k) tail is
/// zero-filled (weight pads are zero codes, so tail bytes never
/// contribute). Shared scalar code: every kernel tier quantizes through
/// this one function, which is one of the two legs of the cross-kernel
/// bit-identity contract.
QuantizedRowParams QuantizeActivationRow(const float* src, int64_t k,
                                         int64_t src_stride, uint8_t* dst,
                                         int64_t padded_k);

}  // namespace edde

#endif  // EDDE_TENSOR_QUANTIZE_H_
