#ifndef EDDE_TENSOR_GEMM_H_
#define EDDE_TENSOR_GEMM_H_

#include <cstdint>

namespace edde {

// ---------------------------------------------------------------------------
// Packed GEMM micro-kernel layer (see DESIGN.md §10)
// ---------------------------------------------------------------------------
//
// Three kernel implementations sit behind one dispatch point:
//
//  - kScalar: the original cache-blocked triple loop. Kept verbatim as the
//    reference implementation; bit-identical to the pre-packing code on any
//    input without exact zeros in op(A) (the old kernel skipped zero
//    multiplters, which also swallowed NaN/Inf from B — see
//    tensor_ops_test NaN-propagation coverage).
//  - kPortable: packed 6x16 register-tile micro-kernel written in
//    compiler-vectorizable form (`#pragma omp simd`). Works on any target;
//    compiles to SSE2 at the default baseline and to AVX2 under
//    -march=x86-64-v3.
//  - kAvx2: the same 6x16 tile as hand-written AVX2/FMA intrinsics,
//    compiled in its own translation unit with -mavx2 -mfma and selected
//    at runtime only when the CPU reports both features.
//
// Dispatch resolves once per process: EDDE_GEMM_KERNEL=scalar|portable|
// avx2|auto if set (invalid or unsupported values fall back with a
// warning), else AVX2 when available, else portable. SetGemmKernel
// overrides programmatically (tests, benches). For a fixed dispatch path
// results are bit-identical across thread counts and across repeated runs;
// different kernels differ from each other in final-ulp rounding (the FMA
// contraction in kAvx2, vector reassociation in kPortable), which is why
// accuracy tests compare against a float64 reference rather than across
// kernels.

enum class GemmKernel {
  kAuto = 0,  ///< resolve from EDDE_GEMM_KERNEL / CPU features
  kScalar,
  kPortable,
  kAvx2,
};

/// The kernel GemmRaw will run (never kAuto).
GemmKernel ActiveGemmKernel();

/// "scalar" / "portable" / "avx2".
const char* GemmKernelName(GemmKernel kernel);

/// Overrides kernel selection; kAuto restores the default resolution.
/// Not safe while GEMMs are in flight (tests/benches/main only).
void SetGemmKernel(GemmKernel kernel);

/// Epilogue fused into the final C-tile update so Dense/Conv forward need
/// no second pass over the activations: optional bias broadcast (per C row
/// for conv's (OC, OH*OW) layout, per C column for dense's (N, OUT)
/// layout) followed by an optional ReLU clamp.
struct GemmEpilogue {
  enum class Bias { kNone, kPerRow, kPerCol };
  Bias bias = Bias::kNone;
  /// Length m for kPerRow, length n for kPerCol. Must outlive the call.
  const float* bias_data = nullptr;
  bool relu = false;

  bool empty() const { return bias == Bias::kNone && !relu; }
};

/// C = alpha * op(A) @ op(B) + beta * C on raw row-major buffers, with the
/// fused epilogue applied to the final result. op(A) is (m, k) and op(B)
/// is (k, n); `a`/`b` point at the stored (possibly transposed) matrices
/// with leading dimensions lda/ldb. Transposed operands are absorbed by
/// the packing stage — nothing is materialized. Scratch comes from the
/// calling thread's ScratchArena, so steady-state calls allocate nothing.
void GemmRaw(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
             float alpha, const float* a, int64_t lda, const float* b,
             int64_t ldb, float beta, float* c, int64_t ldc,
             const GemmEpilogue& epilogue = GemmEpilogue());

namespace gemm_internal {

/// Register-tile footprint of the micro-kernels. A panels interleave kMR
/// rows per k step, B panels interleave kNR columns per k step.
constexpr int64_t kMR = 6;
constexpr int64_t kNR = 16;
/// Cache blocking: kKC k-steps per packed panel (A block kMC*kKC ~ L2,
/// B sub-panel kKC*kNR ~ L1).
constexpr int64_t kKC = 256;
constexpr int64_t kMC = 132;  // multiple of kMR

/// True when the AVX2/FMA micro-kernel is compiled in and the CPU
/// supports it.
bool Avx2Available();

/// acc[kMR*kNR] = packed A panel x packed B panel over kc steps
/// (overwrites acc; accumulation happens in registers). Implemented with
/// AVX2/FMA intrinsics in gemm_avx2.cc; call only when Avx2Available().
/// `acc` must be 64-byte aligned.
void MicroKernelAvx2(int64_t kc, const float* ap, const float* bp,
                     float* acc);

}  // namespace gemm_internal

}  // namespace edde

#endif  // EDDE_TENSOR_GEMM_H_
