// AVX2 tier of the int8 inference GEMM. Lives in its own translation unit
// compiled with -mavx2 -mfma (see src/CMakeLists.txt) so the rest of the
// library keeps the baseline ISA; runtime dispatch guards every call.
//
// Shape: one u8 activation row against 8 consecutive s8 weight rows, 32
// bytes of depth per step. vpmaddubsw multiplies u8×s8 into int16 pairs —
// safe from saturation because weight codes are clamped to ±63
// (2·255·63 = 32130 < 32767) — then vpmaddwd·1 widens the pairs to int32.
// The accumulation is exact integer arithmetic, so this tier produces the
// same bits as the scalar loop.

#include "tensor/gemm_int8.h"

#include "utils/logging.h"

#if defined(__x86_64__) && defined(__AVX2__) && defined(__FMA__)
#define EDDE_HAVE_INT8_AVX2_KERNEL 1
#include <immintrin.h>
#else
#define EDDE_HAVE_INT8_AVX2_KERNEL 0
#endif

namespace edde {
namespace gemm_internal {

#if EDDE_HAVE_INT8_AVX2_KERNEL

bool Int8Avx2Available() {
  static const bool available =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return available;
}

namespace {

/// Horizontally reduces 8 per-row int32 accumulators into 8 ordered sums.
/// hadd pairs lanes within 128-bit halves, so after the 3-level tree the
/// low half of (h0123, h4567) holds rows {0,1,2,3,4,5,6,7}'s partial sums
/// split across two registers; the permute/add recombines the halves.
inline __m256i ReduceRows8(__m256i a0, __m256i a1, __m256i a2, __m256i a3,
                           __m256i a4, __m256i a5, __m256i a6, __m256i a7) {
  const __m256i h01 = _mm256_hadd_epi32(a0, a1);
  const __m256i h23 = _mm256_hadd_epi32(a2, a3);
  const __m256i h45 = _mm256_hadd_epi32(a4, a5);
  const __m256i h67 = _mm256_hadd_epi32(a6, a7);
  const __m256i h0123 = _mm256_hadd_epi32(h01, h23);
  const __m256i h4567 = _mm256_hadd_epi32(h45, h67);
  const __m256i lo = _mm256_permute2x128_si256(h0123, h4567, 0x20);
  const __m256i hi = _mm256_permute2x128_si256(h0123, h4567, 0x31);
  return _mm256_add_epi32(lo, hi);
}

}  // namespace

void MicroKernelInt8Avx2(int64_t kpad, const uint8_t* qa, const int8_t* w,
                         int64_t stride, int32_t* out8) {
  const __m256i ones = _mm256_set1_epi16(1);
  __m256i acc0 = _mm256_setzero_si256();
  __m256i acc1 = _mm256_setzero_si256();
  __m256i acc2 = _mm256_setzero_si256();
  __m256i acc3 = _mm256_setzero_si256();
  __m256i acc4 = _mm256_setzero_si256();
  __m256i acc5 = _mm256_setzero_si256();
  __m256i acc6 = _mm256_setzero_si256();
  __m256i acc7 = _mm256_setzero_si256();
  for (int64_t p = 0; p < kpad; p += 32) {
    const __m256i q =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(qa + p));
#define EDDE_INT8_ROW(idx)                                                    \
  {                                                                           \
    const __m256i wrow = _mm256_loadu_si256(                                  \
        reinterpret_cast<const __m256i*>(w + (idx)*stride + p));              \
    const __m256i pairs = _mm256_maddubs_epi16(q, wrow);                      \
    acc##idx = _mm256_add_epi32(acc##idx, _mm256_madd_epi16(pairs, ones));    \
  }
    EDDE_INT8_ROW(0)
    EDDE_INT8_ROW(1)
    EDDE_INT8_ROW(2)
    EDDE_INT8_ROW(3)
    EDDE_INT8_ROW(4)
    EDDE_INT8_ROW(5)
    EDDE_INT8_ROW(6)
    EDDE_INT8_ROW(7)
#undef EDDE_INT8_ROW
  }
  const __m256i sums =
      ReduceRows8(acc0, acc1, acc2, acc3, acc4, acc5, acc6, acc7);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out8), sums);
}

int64_t FinalizeRowAvx2(float act_scale, int32_t act_zero,
                        const float* w_scales, const int32_t* row_sums,
                        const int32_t* acc, int64_t n, const float* bias,
                        bool relu, float* out) {
  const __m256i vzp = _mm256_set1_epi32(act_zero);
  const __m256 vscale = _mm256_set1_ps(act_scale);
  const __m256 vzero = _mm256_setzero_ps();
  const int64_t n8 = n & ~int64_t{7};
  for (int64_t j = 0; j < n8; j += 8) {
    const __m256i sums = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(row_sums + j));
    const __m256i corrected = _mm256_sub_epi32(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + j)),
        _mm256_mullo_epi32(vzp, sums));
    // Same evaluation order as the scalar path: (s_a·s_w) · corrected,
    // then + bias — three distinct roundings, no FMA contraction.
    const __m256 combined = _mm256_mul_ps(vscale, _mm256_loadu_ps(w_scales + j));
    __m256 v = _mm256_mul_ps(combined, _mm256_cvtepi32_ps(corrected));
    if (bias != nullptr) v = _mm256_add_ps(v, _mm256_loadu_ps(bias + j));
    if (relu) v = _mm256_max_ps(v, vzero);
    _mm256_storeu_ps(out + j, v);
  }
  return n8;
}

#else  // !EDDE_HAVE_INT8_AVX2_KERNEL

bool Int8Avx2Available() { return false; }

void MicroKernelInt8Avx2(int64_t, const uint8_t*, const int8_t*, int64_t,
                         int32_t*) {
  EDDE_CHECK(false) << "int8 AVX2 kernel not compiled in";
}

int64_t FinalizeRowAvx2(float, int32_t, const float*, const int32_t*,
                        const int32_t*, int64_t, const float*, bool, float*) {
  EDDE_CHECK(false) << "int8 AVX2 finalize not compiled in";
  return 0;
}

#endif

}  // namespace gemm_internal
}  // namespace edde
