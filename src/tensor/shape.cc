#include "tensor/shape.h"

#include <sstream>

#include "utils/logging.h"

namespace edde {

void Shape::Validate() const {
  for (int64_t d : dims_) {
    EDDE_CHECK_GE(d, 0) << "negative dimension in shape";
  }
}

int64_t Shape::dim(int axis) const {
  if (axis < 0) axis += rank();
  EDDE_CHECK_GE(axis, 0);
  EDDE_CHECK_LT(axis, rank());
  return dims_[static_cast<size_t>(axis)];
}

int64_t Shape::num_elements() const {
  int64_t n = 1;
  for (int64_t d : dims_) n *= d;
  return n;
}

std::vector<int64_t> Shape::Strides() const {
  std::vector<int64_t> strides(dims_.size());
  int64_t acc = 1;
  for (int i = rank() - 1; i >= 0; --i) {
    strides[static_cast<size_t>(i)] = acc;
    acc *= dims_[static_cast<size_t>(i)];
  }
  return strides;
}

std::string Shape::ToString() const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (i > 0) os << ", ";
    os << dims_[i];
  }
  os << "]";
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Shape& shape) {
  return os << shape.ToString();
}

}  // namespace edde
