#include "tensor/gemm_int8.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "utils/arena.h"
#include "utils/logging.h"
#include "utils/run_manifest.h"
#include "utils/threadpool.h"

namespace edde {

namespace {

// Mirrors gemm.cc's helper: rows per parallel chunk targeting roughly
// `target_work` scalar ops so tiny problems stay serial.
int64_t RowGrain(int64_t work_per_row, int64_t target_work) {
  if (work_per_row < 1) work_per_row = 1;
  const int64_t grain = target_work / work_per_row;
  return grain < 1 ? 1 : grain;
}

/// Records which int8 kernel tier actually ran (including the VNNI
/// drop-in), once per tier change, so the run manifest carries
/// `gemm_int8_kernel` next to `gemm_kernel`.
void RecordInt8Kernel(GemmKernel kernel, bool vnni) {
  static std::atomic<int> recorded{-1};
  const int id = static_cast<int>(kernel) * 2 + (vnni ? 1 : 0);
  int prev = recorded.load(std::memory_order_relaxed);
  if (prev == id) return;
  if (recorded.compare_exchange_strong(prev, id, std::memory_order_relaxed)) {
    ManifestSetFlag("gemm_int8_kernel",
                    vnni ? "avx2+vnni" : GemmKernelName(kernel));
  }
}

/// One activation row against every weight row, exact int32 accumulation.
/// Any tier may compute any row: the result is integer-exact, so tiers are
/// interchangeable per row without breaking cross-kernel bit-identity.
void ComputeRowScalar(const uint8_t* qa, const QuantizedMatrix& w,
                      int32_t* acc) {
  const int64_t k = w.cols;
  for (int64_t j = 0; j < w.rows; ++j) {
    const int8_t* wr = w.row(j);
    int32_t sum = 0;
    for (int64_t p = 0; p < k; ++p) {
      sum += static_cast<int32_t>(qa[p]) * static_cast<int32_t>(wr[p]);
    }
    acc[j] = sum;
  }
}

/// Same loop shaped for the auto-vectorizer (u8/s8 widening multiplies
/// reduce well under -march=x86-64-v3). Exactness makes the codegen
/// difference unobservable in the output.
void ComputeRowPortable(const uint8_t* qa, const QuantizedMatrix& w,
                        int32_t* acc) {
  const int64_t k = w.cols;
  for (int64_t j = 0; j < w.rows; ++j) {
    const int8_t* wr = w.row(j);
    int32_t sum = 0;
#pragma omp simd reduction(+ : sum)
    for (int64_t p = 0; p < k; ++p) {
      sum += static_cast<int32_t>(qa[p]) * static_cast<int32_t>(wr[p]);
    }
    acc[j] = sum;
  }
}

/// Activation rows processed per weight pass by the SIMD tiers. At the
/// depths the layers use, one activation row streams the whole weight
/// matrix out of L2 and the micro-kernels stall on bandwidth; revisiting
/// each 8-row weight block for a tile of activation rows while it sits in
/// L1 divides that traffic by the tile height. Row results are unchanged
/// — only the visit order differs, and every row's accumulation is exact.
constexpr int64_t kInt8RowTile = 16;

/// A tile of activation rows against every weight row through the 8-wide
/// micro-kernels (vpmaddubsw, or the VNNI drop-in when selected). `qa`
/// holds `rows` quantized activation rows `qa_stride` bytes apart; `acc`
/// receives `rows` int32 result rows `acc_stride` entries apart.
void ComputeTileAvx2(const uint8_t* qa, int64_t rows, int64_t qa_stride,
                     const QuantizedMatrix& w, int32_t* acc,
                     int64_t acc_stride, bool use_vnni) {
  const int64_t kpad = w.stride;
  int64_t j = 0;
  for (; j + 8 <= w.rows; j += 8) {
    const int8_t* wblock = w.row(j);
    if (use_vnni) {
      for (int64_t r = 0; r < rows; ++r) {
        gemm_internal::MicroKernelInt8Vnni(kpad, qa + r * qa_stride, wblock,
                                           w.stride, acc + r * acc_stride + j);
      }
    } else {
      for (int64_t r = 0; r < rows; ++r) {
        gemm_internal::MicroKernelInt8Avx2(kpad, qa + r * qa_stride, wblock,
                                           w.stride, acc + r * acc_stride + j);
      }
    }
  }
  // Tail weight rows (< 8) fall back to the scalar dot — still exact, so
  // the boundary between the two paths never shows in the output.
  for (; j < w.rows; ++j) {
    const int8_t* wr = w.row(j);
    for (int64_t r = 0; r < rows; ++r) {
      const uint8_t* qr = qa + r * qa_stride;
      int32_t sum = 0;
      for (int64_t p = 0; p < w.cols; ++p) {
        sum += static_cast<int32_t>(qr[p]) * static_cast<int32_t>(wr[p]);
      }
      acc[r * acc_stride + j] = sum;
    }
  }
}

/// The single finalization path every kernel tier funnels through:
/// float v = (s_a·s_w) · (acc − z·rowsum) [+ bias] [relu]. The zero-point
/// correction is done in int64 (the int32 product z·rowsum can overflow
/// the subtraction for deep reductions) and the float expression has one
/// fixed evaluation order, which is the other leg of the cross-kernel
/// bit-identity contract.
/// Depth up to which the zero-point correction fits int32: |acc| and
/// |z·rowsum| are each ≤ 255·63·k, so the subtraction stays inside int32
/// for k ≤ 2³¹/(2·255·63) ≈ 66830. Above it (or for transposed stores)
/// the scalar int64 path below covers everything.
constexpr int64_t kInt8FinalizeInt32Depth = 65536;

void FinalizeRow(const QuantizedRowParams& params, const QuantizedMatrix& w,
                 const int32_t* acc, bool trans_c, float* c, int64_t i,
                 int64_t ldc, const GemmEpilogue& epi) {
  const float* bias =
      epi.bias != GemmEpilogue::Bias::kNone ? epi.bias_data : nullptr;
  int64_t j0 = 0;
  if (!trans_c && w.cols <= kInt8FinalizeInt32Depth &&
      gemm_internal::Int8Avx2Available()) {
    // Elementwise-identical 8-wide version of the loop below; it runs for
    // every kernel tier alike, so tiers still agree bit-for-bit.
    j0 = gemm_internal::FinalizeRowAvx2(params.scale, params.zero,
                                        w.scales.data(), w.row_sums.data(),
                                        acc, w.rows, bias, epi.relu,
                                        c + i * ldc);
  }
  for (int64_t j = j0; j < w.rows; ++j) {
    const int64_t corrected =
        static_cast<int64_t>(acc[j]) -
        static_cast<int64_t>(params.zero) *
            static_cast<int64_t>(w.row_sums[static_cast<size_t>(j)]);
    float v = params.scale * w.scales[static_cast<size_t>(j)] *
              static_cast<float>(corrected);
    if (bias != nullptr) v += bias[j];
    if (epi.relu) v = v > 0.0f ? v : 0.0f;
    c[trans_c ? j * ldc + i : i * ldc + j] = v;
  }
}

}  // namespace

namespace gemm_internal {

namespace {

bool VnniEnabledDefault() {
  const char* env = std::getenv("EDDE_INT8_VNNI");
  return env == nullptr || env[0] != '0';
}

std::atomic<bool> g_int8_vnni_enabled{VnniEnabledDefault()};

}  // namespace

void SetInt8VnniEnabled(bool enabled) {
  g_int8_vnni_enabled.store(enabled, std::memory_order_relaxed);
}

bool Int8VnniEnabled() {
  return g_int8_vnni_enabled.load(std::memory_order_relaxed);
}

}  // namespace gemm_internal

void GemmInt8(bool trans_a, bool trans_c, int64_t m, int64_t k,
              const float* a, int64_t lda, const QuantizedMatrix& w, float* c,
              int64_t ldc, const GemmEpilogue& epilogue) {
  if (m <= 0 || w.rows <= 0) return;
  EDDE_CHECK_EQ(w.cols, k) << "quantized weight depth mismatch";
  EDDE_CHECK_GT(k, 0);
  EDDE_CHECK_LE(k, kInt8MaxDepth)
      << "reduction too deep for exact int32 accumulation";
  if (epilogue.bias != GemmEpilogue::Bias::kNone) {
    EDDE_CHECK(epilogue.bias_data != nullptr) << "bias epilogue without data";
    // The bias always indexes the output channel j; the layout flag just
    // names where channels land in the stored C.
    EDDE_CHECK(epilogue.bias == (trans_c ? GemmEpilogue::Bias::kPerRow
                                         : GemmEpilogue::Bias::kPerCol))
        << "int8 epilogue bias must broadcast over output channels";
  }

  GemmKernel kernel = ActiveGemmKernel();
  if (kernel == GemmKernel::kAvx2 && !gemm_internal::Int8Avx2Available()) {
    kernel = GemmKernel::kPortable;
  }
  const bool use_vnni = kernel == GemmKernel::kAvx2 &&
                        gemm_internal::Int8VnniAvailable() &&
                        gemm_internal::Int8VnniEnabled();
  RecordInt8Kernel(kernel, use_vnni);

  const int64_t n = w.rows;
  const int64_t kpad = w.stride;
  // Each worker owns a disjoint set of activation rows; quantization,
  // accumulation and finalization are all row-local, so any partition
  // produces the same bits. The grain is rounded up to the row tile so
  // the SIMD tiers keep full tiles even when the work estimate is small.
  int64_t grain = RowGrain(n * k, 1 << 18);
  grain = (grain + kInt8RowTile - 1) / kInt8RowTile * kInt8RowTile;
  ParallelFor(0, m, grain, [&](int64_t i0, int64_t i1) {
    ArenaScope scope;
    uint8_t* qa = static_cast<uint8_t*>(
        scope.Alloc(static_cast<size_t>(kInt8RowTile * kpad)));
    int32_t* acc = static_cast<int32_t*>(
        scope.Alloc(static_cast<size_t>(kInt8RowTile * n) * 4));
    QuantizedRowParams params[kInt8RowTile];
    for (int64_t t = i0; t < i1; t += kInt8RowTile) {
      const int64_t rows = std::min<int64_t>(kInt8RowTile, i1 - t);
      for (int64_t r = 0; r < rows; ++r) {
        const int64_t i = t + r;
        const float* src = trans_a ? a + i : a + i * lda;
        params[r] =
            QuantizeActivationRow(src, k, trans_a ? lda : 1, qa + r * kpad,
                                  kpad);
      }
      switch (kernel) {
        case GemmKernel::kScalar:
          for (int64_t r = 0; r < rows; ++r) {
            ComputeRowScalar(qa + r * kpad, w, acc + r * n);
          }
          break;
        case GemmKernel::kAvx2:
          ComputeTileAvx2(qa, rows, kpad, w, acc, n, use_vnni);
          break;
        default:
          for (int64_t r = 0; r < rows; ++r) {
            ComputeRowPortable(qa + r * kpad, w, acc + r * n);
          }
          break;
      }
      for (int64_t r = 0; r < rows; ++r) {
        FinalizeRow(params[r], w, acc + r * n, trans_c, c, t + r, ldc,
                    epilogue);
      }
    }
  });
}

}  // namespace edde
