#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "tensor/gemm.h"
#include "tensor/gemm_int8.h"
#include "utils/arena.h"
#include "utils/logging.h"
#include "utils/threadpool.h"

namespace edde {

namespace {

// Row-grain targeting roughly `target_work` scalar ops per chunk, so tiny
// tensors (tests, per-sample gemms) take the serial path inside ParallelFor
// and stay bit-identical to the pre-threading implementation. Row-parallel
// kernels write disjoint rows and keep the serial accumulation order within
// each row, so results are bit-identical for every thread count anyway; the
// grain only controls scheduling overhead.
int64_t RowGrain(int64_t work_per_row, int64_t target_work) {
  if (work_per_row < 1) work_per_row = 1;
  const int64_t grain = target_work / work_per_row;
  return grain < 1 ? 1 : grain;
}

void CheckGemmShapes(bool trans_a, bool trans_b, const Tensor& a,
                     const Tensor& b, const Tensor& c, int64_t* m, int64_t* n,
                     int64_t* k) {
  EDDE_CHECK_EQ(a.shape().rank(), 2);
  EDDE_CHECK_EQ(b.shape().rank(), 2);
  EDDE_CHECK_EQ(c.shape().rank(), 2);
  *m = trans_a ? a.shape().dim(1) : a.shape().dim(0);
  *k = trans_a ? a.shape().dim(0) : a.shape().dim(1);
  const int64_t kb = trans_b ? b.shape().dim(1) : b.shape().dim(0);
  *n = trans_b ? b.shape().dim(0) : b.shape().dim(1);
  EDDE_CHECK_EQ(*k, kb) << "gemm inner dimension mismatch";
  EDDE_CHECK_EQ(c.shape().dim(0), *m);
  EDDE_CHECK_EQ(c.shape().dim(1), *n);
}

}  // namespace

void Gemm(bool trans_a, bool trans_b, float alpha, const Tensor& a,
          const Tensor& b, float beta, Tensor* c) {
  GemmEx(trans_a, trans_b, alpha, a, b, beta, c, GemmEpilogue());
}

void GemmEx(bool trans_a, bool trans_b, float alpha, const Tensor& a,
            const Tensor& b, float beta, Tensor* c,
            const GemmEpilogue& epilogue) {
  int64_t m = 0, n = 0, k = 0;
  CheckGemmShapes(trans_a, trans_b, a, b, *c, &m, &n, &k);
  GemmRaw(trans_a, trans_b, m, n, k, alpha, a.data(), a.shape().dim(1),
          b.data(), b.shape().dim(1), beta, c->data(), n, epilogue);
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  Tensor c(Shape{a.shape().dim(0), b.shape().dim(1)});
  Gemm(false, false, 1.0f, a, b, 0.0f, &c);
  return c;
}

void Axpy(float alpha, const Tensor& x, Tensor* y) {
  EDDE_CHECK_EQ(x.num_elements(), y->num_elements());
  const float* px = x.data();
  float* py = y->data();
  const int64_t n = x.num_elements();
#pragma omp simd
  for (int64_t i = 0; i < n; ++i) py[i] += alpha * px[i];
}

void Scale(float alpha, Tensor* x) {
  float* p = x->data();
  const int64_t n = x->num_elements();
#pragma omp simd
  for (int64_t i = 0; i < n; ++i) p[i] *= alpha;
}

Tensor Add(const Tensor& a, const Tensor& b) {
  EDDE_CHECK(a.shape() == b.shape());
  Tensor out = a.Clone();
  Axpy(1.0f, b, &out);
  return out;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  EDDE_CHECK(a.shape() == b.shape());
  Tensor out = a.Clone();
  Axpy(-1.0f, b, &out);
  return out;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  EDDE_CHECK(a.shape() == b.shape());
  Tensor out(a.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  const int64_t n = a.num_elements();
#pragma omp simd
  for (int64_t i = 0; i < n; ++i) po[i] = pa[i] * pb[i];
  return out;
}

double Dot(const Tensor& a, const Tensor& b) {
  EDDE_CHECK_EQ(a.num_elements(), b.num_elements());
  double acc = 0.0;
  const float* pa = a.data();
  const float* pb = b.data();
  const int64_t n = a.num_elements();
  for (int64_t i = 0; i < n; ++i) acc += static_cast<double>(pa[i]) * pb[i];
  return acc;
}

double SquaredNorm(const Tensor& x) { return Dot(x, x); }

void SoftmaxRow(const float* row, int64_t k, float* orow) {
  float mx = row[0];
  // max is exact (no rounding), so the vectorized reduction is
  // bit-identical to the serial loop.
#pragma omp simd reduction(max : mx)
  for (int64_t j = 1; j < k; ++j) mx = std::max(mx, row[j]);
  double total = 0.0;
  for (int64_t j = 0; j < k; ++j) {
    orow[j] = std::exp(row[j] - mx);
    total += orow[j];
  }
  const float inv = static_cast<float>(1.0 / total);
#pragma omp simd
  for (int64_t j = 0; j < k; ++j) orow[j] *= inv;
}

Tensor Softmax(const Tensor& logits) {
  EDDE_CHECK_EQ(logits.shape().rank(), 2);
  const int64_t n = logits.shape().dim(0);
  const int64_t k = logits.shape().dim(1);
  Tensor out(logits.shape());
  ParallelFor(0, n, RowGrain(k, 1 << 14), [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      SoftmaxRow(logits.data() + i * k, k, out.data() + i * k);
    }
  });
  return out;
}

Tensor LogSoftmax(const Tensor& logits) {
  EDDE_CHECK_EQ(logits.shape().rank(), 2);
  const int64_t n = logits.shape().dim(0);
  const int64_t k = logits.shape().dim(1);
  Tensor out(logits.shape());
  ParallelFor(0, n, RowGrain(k, 1 << 14), [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      const float* row = logits.data() + i * k;
      float* orow = out.data() + i * k;
      float mx = row[0];
      for (int64_t j = 1; j < k; ++j) mx = std::max(mx, row[j]);
      double total = 0.0;
      for (int64_t j = 0; j < k; ++j) total += std::exp(row[j] - mx);
      const float lse = mx + static_cast<float>(std::log(total));
      for (int64_t j = 0; j < k; ++j) orow[j] = row[j] - lse;
    }
  });
  return out;
}

std::vector<int> ArgmaxRows(const Tensor& m) {
  EDDE_CHECK_EQ(m.shape().rank(), 2);
  const int64_t n = m.shape().dim(0);
  const int64_t k = m.shape().dim(1);
  std::vector<int> out(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const float* row = m.data() + i * k;
    int best = 0;
    for (int64_t j = 1; j < k; ++j) {
      if (row[j] > row[best]) best = static_cast<int>(j);
    }
    out[static_cast<size_t>(i)] = best;
  }
  return out;
}

std::vector<float> RowL2Distance(const Tensor& a, const Tensor& b) {
  EDDE_CHECK(a.shape() == b.shape());
  EDDE_CHECK_EQ(a.shape().rank(), 2);
  const int64_t n = a.shape().dim(0);
  const int64_t k = a.shape().dim(1);
  std::vector<float> out(static_cast<size_t>(n));
  ParallelFor(0, n, RowGrain(k, 1 << 14), [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      const float* ra = a.data() + i * k;
      const float* rb = b.data() + i * k;
      double acc = 0.0;
      // Vector reassociation of the double sum is fine here: the value is
      // deterministic for a fixed binary and thread-count independent
      // (per-row), and no test compares it against a serial reference.
#pragma omp simd reduction(+ : acc)
      for (int64_t j = 0; j < k; ++j) {
        const double d = static_cast<double>(ra[j]) - rb[j];
        acc += d * d;
      }
      out[static_cast<size_t>(i)] = static_cast<float>(std::sqrt(acc));
    }
  });
  return out;
}

void Im2Col(const float* input, int64_t channels, int64_t height,
            int64_t width, const ConvGeom& geom, float* cols) {
  const int64_t oh = geom.OutExtent(height);
  const int64_t ow = geom.OutExtent(width);
  const int64_t k = geom.kernel;
  // Each unrolled row (c, ky, kx) writes a disjoint stripe of `cols`, so the
  // rows parallelize freely.
  const int64_t num_rows = channels * k * k;
  ParallelFor(0, num_rows, RowGrain(oh * ow, 1 << 14),
              [&](int64_t r0, int64_t r1) {
    for (int64_t row = r0; row < r1; ++row) {
      const int64_t c = row / (k * k);
      const int64_t ky = (row / k) % k;
      const int64_t kx = row % k;
      const float* img = input + c * height * width;
      float* out_row = cols + row * oh * ow;
      for (int64_t y = 0; y < oh; ++y) {
        const int64_t iy = y * geom.stride + ky - geom.padding;
        if (iy < 0 || iy >= height) {
          std::memset(out_row + y * ow, 0, sizeof(float) * ow);
          continue;
        }
        const float* src = img + iy * width;
        for (int64_t x = 0; x < ow; ++x) {
          const int64_t ix = x * geom.stride + kx - geom.padding;
          out_row[y * ow + x] = (ix >= 0 && ix < width) ? src[ix] : 0.0f;
        }
      }
    }
  });
}

void Col2Im(const float* cols, int64_t channels, int64_t height,
            int64_t width, const ConvGeom& geom, float* input_grad) {
  const int64_t oh = geom.OutExtent(height);
  const int64_t ow = geom.OutExtent(width);
  const int64_t k = geom.kernel;
  // Kernel offsets of one channel accumulate into overlapping pixels, so
  // parallelism stops at the channel level: channels own disjoint image
  // planes and the (ky, kx, y) accumulation order within a channel stays
  // serial — bit-identical for every thread count.
  ParallelFor(0, channels, RowGrain(k * k * oh * ow, 1 << 14),
              [&](int64_t c0, int64_t c1) {
    for (int64_t c = c0; c < c1; ++c) {
      float* img = input_grad + c * height * width;
      int64_t row = c * k * k;
      for (int64_t ky = 0; ky < k; ++ky) {
        for (int64_t kx = 0; kx < k; ++kx, ++row) {
          const float* in_row = cols + row * oh * ow;
          for (int64_t y = 0; y < oh; ++y) {
            const int64_t iy = y * geom.stride + ky - geom.padding;
            if (iy < 0 || iy >= height) continue;
            float* dst = img + iy * width;
            for (int64_t x = 0; x < ow; ++x) {
              const int64_t ix = x * geom.stride + kx - geom.padding;
              if (ix >= 0 && ix < width) dst[ix] += in_row[y * ow + x];
            }
          }
        }
      }
    }
  });
}

Tensor Conv2dForward(const Tensor& input, const Tensor& weight,
                     const Tensor& bias, const ConvGeom& geom) {
  EDDE_CHECK_EQ(input.shape().rank(), 4);
  const int64_t batch = input.shape().dim(0);
  const int64_t cin = input.shape().dim(1);
  const int64_t h = input.shape().dim(2);
  const int64_t w = input.shape().dim(3);
  EDDE_CHECK_EQ(cin, geom.in_channels);
  EDDE_CHECK_EQ(weight.shape().dim(0), geom.out_channels);
  const int64_t oh = geom.OutExtent(h);
  const int64_t ow = geom.OutExtent(w);
  const int64_t cols_rows = cin * geom.kernel * geom.kernel;

  Tensor output(Shape{batch, geom.out_channels, oh, ow});
  const float* w2d = weight.data();  // (OC, C*k*k) view of the kernel
  GemmEpilogue epi;
  if (!bias.empty()) {
    // Output rows are channels, so the bias broadcast is per C row and the
    // gemm writes finished activations — no second pass, no out2d staging.
    epi.bias = GemmEpilogue::Bias::kPerRow;
    epi.bias_data = bias.data();
  }
  // Samples are independent: parallelize the batch loop with per-chunk
  // arena scratch. The nested Im2Col/GemmRaw calls detect they are inside a
  // parallel region and run serially, so there is no oversubscription.
  ParallelFor(0, batch, 1, [&](int64_t n0, int64_t n1) {
    ArenaScope scope;
    float* cols = scope.AllocFloats(cols_rows * oh * ow);
    for (int64_t n = n0; n < n1; ++n) {
      Im2Col(input.data() + n * cin * h * w, cin, h, w, geom, cols);
      GemmRaw(false, false, geom.out_channels, oh * ow, cols_rows, 1.0f, w2d,
              cols_rows, cols, oh * ow, 0.0f,
              output.data() + n * geom.out_channels * oh * ow, oh * ow, epi);
    }
  });
  return output;
}

Tensor Conv2dForwardInt8(const Tensor& input, const QuantizedMatrix& weight,
                         const Tensor& bias, const ConvGeom& geom) {
  EDDE_CHECK_EQ(input.shape().rank(), 4);
  const int64_t batch = input.shape().dim(0);
  const int64_t cin = input.shape().dim(1);
  const int64_t h = input.shape().dim(2);
  const int64_t w = input.shape().dim(3);
  EDDE_CHECK_EQ(cin, geom.in_channels);
  EDDE_CHECK_EQ(weight.rows, geom.out_channels);
  const int64_t oh = geom.OutExtent(h);
  const int64_t ow = geom.OutExtent(w);
  const int64_t cols_rows = cin * geom.kernel * geom.kernel;
  EDDE_CHECK_EQ(weight.cols, cols_rows);

  Tensor output(Shape{batch, geom.out_channels, oh, ow});
  GemmEpilogue epi;
  if (!bias.empty()) {
    epi.bias = GemmEpilogue::Bias::kPerRow;
    epi.bias_data = bias.data();
  }
  ParallelFor(0, batch, 1, [&](int64_t n0, int64_t n1) {
    ArenaScope scope;
    float* cols = scope.AllocFloats(cols_rows * oh * ow);
    for (int64_t n = n0; n < n1; ++n) {
      Im2Col(input.data() + n * cin * h * w, cin, h, w, geom, cols);
      // The im2col buffer is (C·k², OH·OW); trans_a reads its columns as
      // activation rows and trans_c lands the result directly in the
      // (OC, OH·OW) output layout — same shape algebra as Conv2dForward's
      // GemmRaw call with both operands flipped.
      GemmInt8(/*trans_a=*/true, /*trans_c=*/true, oh * ow, cols_rows, cols,
               oh * ow, weight, output.data() + n * geom.out_channels * oh * ow,
               oh * ow, epi);
    }
  });
  return output;
}

Tensor Conv2dBackward(const Tensor& input, const Tensor& weight,
                      const Tensor& grad_out, const ConvGeom& geom,
                      Tensor* weight_grad, Tensor* bias_grad) {
  const int64_t batch = input.shape().dim(0);
  const int64_t cin = input.shape().dim(1);
  const int64_t h = input.shape().dim(2);
  const int64_t w = input.shape().dim(3);
  const int64_t oh = geom.OutExtent(h);
  const int64_t ow = geom.OutExtent(w);
  const int64_t cols_rows = cin * geom.kernel * geom.kernel;

  Tensor grad_input(input.shape(), 0.0f);
  ArenaScope scope;
  float* cols = scope.AllocFloats(cols_rows * oh * ow);
  float* grad_cols = scope.AllocFloats(cols_rows * oh * ow);
  const float* w2d = weight.data();       // (OC, C*k*k)
  float* wg2d = weight_grad->data();      // (OC, C*k*k)

  for (int64_t n = 0; n < batch; ++n) {
    // One sample of dY is already a contiguous (OC, OH*OW) matrix; use it
    // in place instead of staging a go2d copy.
    const float* go = grad_out.data() + n * geom.out_channels * oh * ow;

    // dW += dY @ cols^T
    Im2Col(input.data() + n * cin * h * w, cin, h, w, geom, cols);
    GemmRaw(false, true, geom.out_channels, cols_rows, oh * ow, 1.0f, go,
            oh * ow, cols, oh * ow, 1.0f, wg2d, cols_rows);

    // dCols = W^T @ dY ; dX = col2im(dCols)
    GemmRaw(true, false, cols_rows, oh * ow, geom.out_channels, 1.0f, w2d,
            cols_rows, go, oh * ow, 0.0f, grad_cols, oh * ow);
    Col2Im(grad_cols, cin, h, w, geom, grad_input.data() + n * cin * h * w);

    if (bias_grad != nullptr && !bias_grad->empty()) {
      for (int64_t oc = 0; oc < geom.out_channels; ++oc) {
        double acc = 0.0;
        const float* ochan = go + oc * oh * ow;
        for (int64_t i = 0; i < oh * ow; ++i) acc += ochan[i];
        bias_grad->data()[oc] += static_cast<float>(acc);
      }
    }
  }
  return grad_input;
}

Tensor Conv1dForward(const Tensor& input, const Tensor& weight,
                     const Tensor& bias, const Conv1dGeom& geom) {
  EDDE_CHECK_EQ(input.shape().rank(), 3);
  const int64_t batch = input.shape().dim(0);
  const int64_t cin = input.shape().dim(1);
  const int64_t len = input.shape().dim(2);
  EDDE_CHECK_EQ(cin, geom.in_channels);
  const int64_t olen = geom.OutExtent(len);
  EDDE_CHECK_GT(olen, 0) << "conv1d output is empty";

  Tensor output(Shape{batch, geom.out_channels, olen});
  // Each (c, k) tap is an axpy over the valid output positions, which
  // vectorizes over t (the old layout reduced over the short c*k axis per
  // output element and could not). Samples are independent, so the batch
  // loop parallelizes; per-sample work stays serial and deterministic.
  const int64_t work =
      geom.out_channels * olen * (cin * geom.kernel + 1);
  ParallelFor(0, batch, RowGrain(work, 1 << 16), [&](int64_t n0, int64_t n1) {
    for (int64_t n = n0; n < n1; ++n) {
      const float* in = input.data() + n * cin * len;
      float* out = output.data() + n * geom.out_channels * olen;
      for (int64_t oc = 0; oc < geom.out_channels; ++oc) {
        const float* wrow = weight.data() + oc * cin * geom.kernel;
        float* orow = out + oc * olen;
        const float bv = bias.empty() ? 0.0f : bias.data()[oc];
#pragma omp simd
        for (int64_t t = 0; t < olen; ++t) orow[t] = bv;
        for (int64_t c = 0; c < cin; ++c) {
          const float* irow = in + c * len;
          const float* wk = wrow + c * geom.kernel;
          for (int64_t k = 0; k < geom.kernel; ++k) {
            const float wv = wk[k];
            // Valid t: 0 <= t*stride + off < len.
            const int64_t off = k - geom.padding;
            const int64_t t_lo =
                off >= 0 ? 0 : (-off + geom.stride - 1) / geom.stride;
            const int64_t t_hi = std::min(
                olen, off >= len ? int64_t{0}
                                 : (len - off + geom.stride - 1) / geom.stride);
            if (geom.stride == 1) {
              const float* src = irow + off;
#pragma omp simd
              for (int64_t t = t_lo; t < t_hi; ++t) orow[t] += wv * src[t];
            } else {
              for (int64_t t = t_lo; t < t_hi; ++t) {
                orow[t] += wv * irow[t * geom.stride + off];
              }
            }
          }
        }
      }
    }
  });
  return output;
}

Tensor Conv1dBackward(const Tensor& input, const Tensor& weight,
                      const Tensor& grad_out, const Conv1dGeom& geom,
                      Tensor* weight_grad, Tensor* bias_grad) {
  const int64_t batch = input.shape().dim(0);
  const int64_t cin = input.shape().dim(1);
  const int64_t len = input.shape().dim(2);
  const int64_t olen = geom.OutExtent(len);

  Tensor grad_input(input.shape(), 0.0f);
  for (int64_t n = 0; n < batch; ++n) {
    const float* in = input.data() + n * cin * len;
    float* gin = grad_input.data() + n * cin * len;
    const float* go = grad_out.data() + n * geom.out_channels * olen;
    for (int64_t oc = 0; oc < geom.out_channels; ++oc) {
      const float* wrow = weight.data() + oc * cin * geom.kernel;
      float* wgrow = weight_grad->data() + oc * cin * geom.kernel;
      const float* gorow = go + oc * olen;
      for (int64_t t = 0; t < olen; ++t) {
        const float g = gorow[t];
        if (g == 0.0f) continue;
        const int64_t start = t * geom.stride - geom.padding;
        for (int64_t c = 0; c < cin; ++c) {
          const float* irow = in + c * len;
          float* girow = gin + c * len;
          const float* wk = wrow + c * geom.kernel;
          float* wgk = wgrow + c * geom.kernel;
          for (int64_t k = 0; k < geom.kernel; ++k) {
            const int64_t pos = start + k;
            if (pos >= 0 && pos < len) {
              wgk[k] += g * irow[pos];
              girow[pos] += g * wk[k];
            }
          }
        }
      }
      if (bias_grad != nullptr && !bias_grad->empty()) {
        double acc = 0.0;
        for (int64_t t = 0; t < olen; ++t) acc += gorow[t];
        bias_grad->data()[oc] += static_cast<float>(acc);
      }
    }
  }
  return grad_input;
}

Tensor MaxPool2dForward(const Tensor& input, int64_t window,
                        std::vector<int64_t>* argmax) {
  EDDE_CHECK_EQ(input.shape().rank(), 4);
  const int64_t batch = input.shape().dim(0);
  const int64_t c = input.shape().dim(1);
  const int64_t h = input.shape().dim(2);
  const int64_t w = input.shape().dim(3);
  const int64_t oh = h / window;
  const int64_t ow = w / window;
  EDDE_CHECK_GT(oh, 0);
  EDDE_CHECK_GT(ow, 0);

  Tensor output(Shape{batch, c, oh, ow});
  argmax->assign(static_cast<size_t>(output.num_elements()), 0);
  int64_t oi = 0;
  for (int64_t n = 0; n < batch; ++n) {
    for (int64_t ch = 0; ch < c; ++ch) {
      const float* img = input.data() + (n * c + ch) * h * w;
      const int64_t base = (n * c + ch) * h * w;
      for (int64_t y = 0; y < oh; ++y) {
        for (int64_t x = 0; x < ow; ++x, ++oi) {
          float best = -std::numeric_limits<float>::infinity();
          int64_t best_idx = 0;
          for (int64_t dy = 0; dy < window; ++dy) {
            for (int64_t dx = 0; dx < window; ++dx) {
              const int64_t iy = y * window + dy;
              const int64_t ix = x * window + dx;
              const float v = img[iy * w + ix];
              if (v > best) {
                best = v;
                best_idx = base + iy * w + ix;
              }
            }
          }
          output.data()[oi] = best;
          (*argmax)[static_cast<size_t>(oi)] = best_idx;
        }
      }
    }
  }
  return output;
}

Tensor MaxPool2dBackward(const Shape& input_shape, const Tensor& grad_out,
                         const std::vector<int64_t>& argmax) {
  Tensor grad_input(input_shape, 0.0f);
  EDDE_CHECK_EQ(static_cast<int64_t>(argmax.size()), grad_out.num_elements());
  const float* go = grad_out.data();
  for (size_t i = 0; i < argmax.size(); ++i) {
    grad_input.data()[argmax[i]] += go[i];
  }
  return grad_input;
}

Tensor AvgPool2dForward(const Tensor& input, int64_t window) {
  EDDE_CHECK_EQ(input.shape().rank(), 4);
  const int64_t batch = input.shape().dim(0);
  const int64_t c = input.shape().dim(1);
  const int64_t h = input.shape().dim(2);
  const int64_t w = input.shape().dim(3);
  const int64_t oh = h / window;
  const int64_t ow = w / window;
  EDDE_CHECK_GT(oh, 0);
  EDDE_CHECK_GT(ow, 0);
  const float inv = 1.0f / static_cast<float>(window * window);
  Tensor output(Shape{batch, c, oh, ow});
  int64_t oi = 0;
  for (int64_t n = 0; n < batch; ++n) {
    for (int64_t ch = 0; ch < c; ++ch) {
      const float* img = input.data() + (n * c + ch) * h * w;
      for (int64_t y = 0; y < oh; ++y) {
        for (int64_t x = 0; x < ow; ++x, ++oi) {
          double acc = 0.0;
          for (int64_t dy = 0; dy < window; ++dy) {
            for (int64_t dx = 0; dx < window; ++dx) {
              acc += img[(y * window + dy) * w + (x * window + dx)];
            }
          }
          output.data()[oi] = static_cast<float>(acc) * inv;
        }
      }
    }
  }
  return output;
}

Tensor AvgPool2dBackward(const Shape& input_shape, const Tensor& grad_out,
                         int64_t window) {
  const int64_t batch = input_shape.dim(0);
  const int64_t c = input_shape.dim(1);
  const int64_t h = input_shape.dim(2);
  const int64_t w = input_shape.dim(3);
  const int64_t oh = h / window;
  const int64_t ow = w / window;
  const float inv = 1.0f / static_cast<float>(window * window);
  Tensor grad_input(input_shape, 0.0f);
  int64_t oi = 0;
  for (int64_t n = 0; n < batch; ++n) {
    for (int64_t ch = 0; ch < c; ++ch) {
      float* img = grad_input.data() + (n * c + ch) * h * w;
      for (int64_t y = 0; y < oh; ++y) {
        for (int64_t x = 0; x < ow; ++x, ++oi) {
          const float g = grad_out.data()[oi] * inv;
          for (int64_t dy = 0; dy < window; ++dy) {
            for (int64_t dx = 0; dx < window; ++dx) {
              img[(y * window + dy) * w + (x * window + dx)] += g;
            }
          }
        }
      }
    }
  }
  return grad_input;
}

Tensor GlobalAvgPool2dForward(const Tensor& input) {
  EDDE_CHECK_EQ(input.shape().rank(), 4);
  const int64_t batch = input.shape().dim(0);
  const int64_t c = input.shape().dim(1);
  const int64_t hw = input.shape().dim(2) * input.shape().dim(3);
  Tensor out(Shape{batch, c});
  for (int64_t n = 0; n < batch; ++n) {
    for (int64_t ch = 0; ch < c; ++ch) {
      const float* img = input.data() + (n * c + ch) * hw;
      double acc = 0.0;
      for (int64_t i = 0; i < hw; ++i) acc += img[i];
      out.data()[n * c + ch] = static_cast<float>(acc / hw);
    }
  }
  return out;
}

Tensor GlobalAvgPool2dBackward(const Shape& input_shape,
                               const Tensor& grad_out) {
  const int64_t batch = input_shape.dim(0);
  const int64_t c = input_shape.dim(1);
  const int64_t hw = input_shape.dim(2) * input_shape.dim(3);
  Tensor grad_input(input_shape);
  const float inv = 1.0f / static_cast<float>(hw);
  for (int64_t n = 0; n < batch; ++n) {
    for (int64_t ch = 0; ch < c; ++ch) {
      const float g = grad_out.data()[n * c + ch] * inv;
      float* img = grad_input.data() + (n * c + ch) * hw;
      for (int64_t i = 0; i < hw; ++i) img[i] = g;
    }
  }
  return grad_input;
}

Tensor MaxOverTimeForward(const Tensor& input, std::vector<int64_t>* argmax) {
  EDDE_CHECK_EQ(input.shape().rank(), 3);
  const int64_t batch = input.shape().dim(0);
  const int64_t c = input.shape().dim(1);
  const int64_t len = input.shape().dim(2);
  Tensor out(Shape{batch, c});
  argmax->assign(static_cast<size_t>(batch * c), 0);
  for (int64_t n = 0; n < batch; ++n) {
    for (int64_t ch = 0; ch < c; ++ch) {
      const float* row = input.data() + (n * c + ch) * len;
      int64_t best = 0;
      for (int64_t t = 1; t < len; ++t) {
        if (row[t] > row[best]) best = t;
      }
      out.data()[n * c + ch] = row[best];
      (*argmax)[static_cast<size_t>(n * c + ch)] = (n * c + ch) * len + best;
    }
  }
  return out;
}

Tensor MaxOverTimeBackward(const Shape& input_shape, const Tensor& grad_out,
                           const std::vector<int64_t>& argmax) {
  Tensor grad_input(input_shape, 0.0f);
  const float* go = grad_out.data();
  for (size_t i = 0; i < argmax.size(); ++i) {
    grad_input.data()[argmax[i]] += go[i];
  }
  return grad_input;
}

Tensor ConcatChannels(const Tensor& a, const Tensor& b) {
  EDDE_CHECK_EQ(a.shape().rank(), 4);
  EDDE_CHECK_EQ(b.shape().rank(), 4);
  EDDE_CHECK_EQ(a.shape().dim(0), b.shape().dim(0));
  EDDE_CHECK_EQ(a.shape().dim(2), b.shape().dim(2));
  EDDE_CHECK_EQ(a.shape().dim(3), b.shape().dim(3));
  const int64_t batch = a.shape().dim(0);
  const int64_t ca = a.shape().dim(1);
  const int64_t cb = b.shape().dim(1);
  const int64_t hw = a.shape().dim(2) * a.shape().dim(3);
  Tensor out(Shape{batch, ca + cb, a.shape().dim(2), a.shape().dim(3)});
  for (int64_t n = 0; n < batch; ++n) {
    std::memcpy(out.data() + n * (ca + cb) * hw, a.data() + n * ca * hw,
                sizeof(float) * ca * hw);
    std::memcpy(out.data() + (n * (ca + cb) + ca) * hw,
                b.data() + n * cb * hw, sizeof(float) * cb * hw);
  }
  return out;
}

void SplitChannelsGrad(const Tensor& grad_out, int64_t channels_a,
                       Tensor* grad_a, Tensor* grad_b) {
  const int64_t batch = grad_out.shape().dim(0);
  const int64_t c = grad_out.shape().dim(1);
  const int64_t hw = grad_out.shape().dim(2) * grad_out.shape().dim(3);
  const int64_t cb = c - channels_a;
  *grad_a = Tensor(Shape{batch, channels_a, grad_out.shape().dim(2),
                         grad_out.shape().dim(3)});
  *grad_b = Tensor(
      Shape{batch, cb, grad_out.shape().dim(2), grad_out.shape().dim(3)});
  for (int64_t n = 0; n < batch; ++n) {
    std::memcpy(grad_a->data() + n * channels_a * hw,
                grad_out.data() + n * c * hw, sizeof(float) * channels_a * hw);
    std::memcpy(grad_b->data() + n * cb * hw,
                grad_out.data() + (n * c + channels_a) * hw,
                sizeof(float) * cb * hw);
  }
}

}  // namespace edde
