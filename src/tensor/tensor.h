#ifndef EDDE_TENSOR_TENSOR_H_
#define EDDE_TENSOR_TENSOR_H_

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "tensor/rng.h"
#include "tensor/shape.h"

namespace edde {

/// Dense row-major float32 tensor with shared ownership of its buffer.
///
/// Copying a Tensor is cheap (shared buffer); use Clone() for a deep copy.
/// All neural-network activations, parameters and gradients in the library
/// are Tensors. The class is deliberately minimal — heavy math lives in
/// tensor/ops.h as free functions.
class Tensor {
 public:
  /// An empty (rank-0, zero-size buffer) tensor. data() is null.
  Tensor() = default;

  /// Allocates an uninitialized tensor of `shape`.
  explicit Tensor(Shape shape);

  /// Allocates and fills with `value`.
  Tensor(Shape shape, float value);

  /// Builds a tensor from explicit values; size must match the shape.
  Tensor(Shape shape, std::initializer_list<float> values);
  Tensor(Shape shape, const std::vector<float>& values);

  /// Deep copy.
  Tensor Clone() const;

  /// True when no buffer is attached.
  bool empty() const { return data_ == nullptr; }

  const Shape& shape() const { return shape_; }
  int64_t num_elements() const { return shape_.num_elements(); }

  float* data() { return data_.get(); }
  const float* data() const { return data_.get(); }

  /// Flat element access with bounds checks in debug builds.
  float& at(int64_t i);
  float at(int64_t i) const;

  /// 2-D access for (rows, cols) tensors.
  float& at(int64_t i, int64_t j);
  float at(int64_t i, int64_t j) const;

  /// 4-D access for (n, c, h, w) tensors.
  float& at(int64_t n, int64_t c, int64_t h, int64_t w);
  float at(int64_t n, int64_t c, int64_t h, int64_t w) const;

  /// Sets every element to `value`.
  void Fill(float value);

  /// Fills i.i.d. N(mean, stddev).
  void FillNormal(Rng* rng, float mean, float stddev);

  /// Fills i.i.d. U[lo, hi).
  void FillUniform(Rng* rng, float lo, float hi);

  /// Returns a tensor sharing this buffer with a different shape of equal
  /// element count.
  Tensor Reshape(Shape new_shape) const;

  /// Copies `other`'s contents into this tensor (shapes must match).
  void CopyFrom(const Tensor& other);

  /// Applies `fn` to every element in place.
  void Apply(const std::function<float(float)>& fn);

  /// Sum of all elements (float64 accumulator).
  double Sum() const;

  /// Mean of all elements.
  double Mean() const;

  /// Maximum absolute element; 0 for empty tensors.
  float AbsMax() const;

  /// Readable dump (truncated for large tensors) for debugging.
  std::string ToString(int64_t max_elements = 32) const;

  /// Factory helpers.
  static Tensor Zeros(Shape shape) { return Tensor(std::move(shape), 0.0f); }
  static Tensor Ones(Shape shape) { return Tensor(std::move(shape), 1.0f); }

 private:
  Tensor(Shape shape, std::shared_ptr<float[]> data)
      : shape_(std::move(shape)), data_(std::move(data)) {}

  Shape shape_;
  std::shared_ptr<float[]> data_;
};

}  // namespace edde

#endif  // EDDE_TENSOR_TENSOR_H_
