#ifndef EDDE_TENSOR_SHAPE_H_
#define EDDE_TENSOR_SHAPE_H_

#include <cstdint>
#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace edde {

/// Dense row-major tensor shape: an ordered list of non-negative dimensions.
/// Rank 0 denotes a scalar with one element.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<int64_t> dims) : dims_(dims) { Validate(); }
  explicit Shape(std::vector<int64_t> dims) : dims_(std::move(dims)) {
    Validate();
  }

  /// Number of dimensions.
  int rank() const { return static_cast<int>(dims_.size()); }

  /// Size of dimension `axis`; negative axes count from the back.
  int64_t dim(int axis) const;

  /// Total element count (product of dims; 1 for scalars).
  int64_t num_elements() const;

  const std::vector<int64_t>& dims() const { return dims_; }

  /// Row-major strides in elements, e.g. {2,3,4} -> {12,4,1}.
  std::vector<int64_t> Strides() const;

  /// "[2, 3, 4]".
  std::string ToString() const;

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

 private:
  void Validate() const;

  std::vector<int64_t> dims_;
};

std::ostream& operator<<(std::ostream& os, const Shape& shape);

}  // namespace edde

#endif  // EDDE_TENSOR_SHAPE_H_
