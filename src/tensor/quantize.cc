#include "tensor/quantize.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#if defined(__x86_64__) || defined(_M_X64)
#define EDDE_QUANTIZE_SSE2 1
#include <emmintrin.h>
#else
#define EDDE_QUANTIZE_SSE2 0
#endif

#include "utils/logging.h"

namespace edde {

// ---------------------------------------------------------------------------
// fp16 conversion
// ---------------------------------------------------------------------------

uint16_t FloatToHalf(float value) {
  uint32_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  const uint32_t sign = (bits >> 16) & 0x8000u;
  const uint32_t abs = bits & 0x7FFFFFFFu;

  if (abs >= 0x7F800000u) {
    // Inf / NaN. Keep a nonzero mantissa bit for NaN so it stays a NaN.
    const uint32_t mantissa = abs > 0x7F800000u ? 0x0200u : 0u;
    return static_cast<uint16_t>(sign | 0x7C00u | mantissa);
  }
  if (abs >= 0x47800000u) {  // >= 65536: overflows half range
    return static_cast<uint16_t>(sign | 0x7C00u);
  }
  if (abs < 0x38800000u) {  // < 2^-14: subnormal half (or zero)
    if (abs < 0x33000000u) {  // < 2^-25: underflows to zero even with RNE
      return static_cast<uint16_t>(sign);
    }
    // half_code = round(mantissa · 2^(e−126)): e ∈ [102, 112] here, so the
    // right shift is 126 − e ∈ [14, 24].
    const int shift = 126 - static_cast<int>(abs >> 23);
    const uint32_t mantissa = (abs & 0x007FFFFFu) | 0x00800000u;
    uint32_t half = mantissa >> shift;
    // Round to nearest even on the bits shifted out.
    const uint32_t rest = mantissa & ((1u << shift) - 1u);
    const uint32_t halfway = 1u << (shift - 1);
    if (rest > halfway || (rest == halfway && (half & 1u))) ++half;
    return static_cast<uint16_t>(sign | half);
  }
  // Normal range: rebias the exponent and round 13 mantissa bits away.
  uint32_t half = (abs - 0x38000000u) >> 13;
  const uint32_t rest = abs & 0x1FFFu;
  if (rest > 0x1000u || (rest == 0x1000u && (half & 1u))) ++half;
  return static_cast<uint16_t>(sign | half);
}

float HalfToFloat(uint16_t half) {
  const uint32_t sign = static_cast<uint32_t>(half & 0x8000u) << 16;
  const uint32_t exp = (half >> 10) & 0x1Fu;
  const uint32_t mantissa = half & 0x3FFu;
  uint32_t bits;
  if (exp == 0x1Fu) {  // Inf / NaN
    bits = sign | 0x7F800000u | (mantissa << 13);
  } else if (exp != 0) {  // normal
    bits = sign | ((exp + 112u) << 23) | (mantissa << 13);
  } else if (mantissa != 0) {  // subnormal: renormalize
    uint32_t m = mantissa;
    uint32_t e = 113;
    while ((m & 0x400u) == 0) {
      m <<= 1;
      --e;
    }
    bits = sign | (e << 23) | ((m & 0x3FFu) << 13);
  } else {  // ±0
    bits = sign;
  }
  float value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

void FloatsToHalfs(const float* src, uint16_t* dst, size_t count) {
  for (size_t i = 0; i < count; ++i) dst[i] = FloatToHalf(src[i]);
}

void HalfsToFloats(const uint16_t* src, float* dst, size_t count) {
  for (size_t i = 0; i < count; ++i) dst[i] = HalfToFloat(src[i]);
}

// ---------------------------------------------------------------------------
// int8 weight quantization
// ---------------------------------------------------------------------------

namespace {

int64_t PadTo(int64_t v, int64_t multiple) {
  return (v + multiple - 1) / multiple * multiple;
}

/// Round-to-nearest-even float→int32. std::lrintf stays a libm PLT call
/// at -O2 (errno-aware math) and dominated the per-element cost of the
/// activation quantization pass; cvtss2si performs the same RNE rounding
/// under the default MXCSR mode, so the codes are bit-identical either
/// way and the quantize→kernel bit-identity contract is unaffected.
inline int32_t RoundNearestInt(float v) {
#if EDDE_QUANTIZE_SSE2
  return _mm_cvtss_si32(_mm_set_ss(v));
#else
  return static_cast<int32_t>(std::lrintf(v));
#endif
}

/// Scalar reference for one activation code; the SSE2 block below performs
/// the identical per-element operations (same multiply, same RNE convert,
/// same clamp), so both paths produce the same bytes and either may cover
/// any element without breaking cross-kernel bit-identity.
inline uint8_t ActivationCode(float v, float inv, int32_t zero) {
  int32_t code = RoundNearestInt(v * inv) + zero;
  if (code < 0) code = 0;
  if (code > 255) code = 255;
  return static_cast<uint8_t>(code);
}

}  // namespace

QuantizedMatrix QuantizeWeightsPerChannel(const float* w, int64_t rows,
                                          int64_t cols) {
  EDDE_CHECK_GT(rows, 0);
  EDDE_CHECK_GT(cols, 0);
  EDDE_CHECK_LE(cols, kInt8MaxDepth);
  QuantizedMatrix q;
  q.rows = rows;
  q.cols = cols;
  q.stride = PadTo(cols, kInt8KStride);
  q.data.assign(static_cast<size_t>(rows * q.stride), 0);
  q.scales.resize(static_cast<size_t>(rows));
  q.row_sums.resize(static_cast<size_t>(rows));
  for (int64_t r = 0; r < rows; ++r) {
    const float* src = w + r * cols;
    float amax = 0.0f;
    for (int64_t c = 0; c < cols; ++c) {
      const float a = std::fabs(src[c]);
      if (a > amax) amax = a;
    }
    const float scale =
        amax > 0.0f ? amax / static_cast<float>(kWeightQuantMax) : 1.0f;
    int8_t* dst = q.data.data() + r * q.stride;
    int32_t sum = 0;
    for (int64_t c = 0; c < cols; ++c) {
      int32_t code = RoundNearestInt(src[c] / scale);
      if (code > kWeightQuantMax) code = kWeightQuantMax;
      if (code < -kWeightQuantMax) code = -kWeightQuantMax;
      dst[c] = static_cast<int8_t>(code);
      sum += code;
    }
    q.scales[static_cast<size_t>(r)] = scale;
    q.row_sums[static_cast<size_t>(r)] = sum;
  }
  return q;
}

QuantizedMatrix QuantizeWeightsPerChannel(const Tensor& w) {
  EDDE_CHECK_GE(w.shape().rank(), 2);
  const int64_t rows = w.shape().dim(0);
  const int64_t cols = w.num_elements() / rows;
  return QuantizeWeightsPerChannel(w.data(), rows, cols);
}

void DequantizeWeights(const QuantizedMatrix& q, float* out) {
  for (int64_t r = 0; r < q.rows; ++r) {
    const int8_t* src = q.row(r);
    const float scale = q.scales[static_cast<size_t>(r)];
    float* dst = out + r * q.cols;
    for (int64_t c = 0; c < q.cols; ++c) {
      dst[c] = scale * static_cast<float>(src[c]);
    }
  }
}

// ---------------------------------------------------------------------------
// activation row quantization
// ---------------------------------------------------------------------------

QuantizedRowParams QuantizeActivationRow(const float* src, int64_t k,
                                         int64_t src_stride, uint8_t* dst,
                                         int64_t padded_k) {
  EDDE_CHECK_GE(padded_k, k);
  QuantizedRowParams params;
  float mn = src[0];
  float mx = src[0];
  int64_t head = 1;
#if EDDE_QUANTIZE_SSE2
  // min/max are exact and order-independent, so the 4-wide reduction finds
  // the same extrema the scalar loop would (activations are finite here).
  if (src_stride == 1 && k >= 8) {
    __m128 vmn = _mm_loadu_ps(src);
    __m128 vmx = vmn;
    int64_t i = 4;
    for (; i + 4 <= k; i += 4) {
      const __m128 v = _mm_loadu_ps(src + i);
      vmn = _mm_min_ps(vmn, v);
      vmx = _mm_max_ps(vmx, v);
    }
    float lanes[4];
    _mm_storeu_ps(lanes, vmn);
    mn = std::min(std::min(lanes[0], lanes[1]), std::min(lanes[2], lanes[3]));
    _mm_storeu_ps(lanes, vmx);
    mx = std::max(std::max(lanes[0], lanes[1]), std::max(lanes[2], lanes[3]));
    head = i;
  }
#endif
  for (int64_t i = head; i < k; ++i) {
    const float v = src[i * src_stride];
    if (v < mn) mn = v;
    if (v > mx) mx = v;
  }
  if (mx > mn) {
    // Extend the range to include zero. This keeps the zero point inside
    // [0, 255] for one-sided rows (all-positive after ReLU, or
    // all-negative), where z = round(−mn/s) would otherwise clamp and
    // saturate every code; it also makes any end-of-range clamp below an
    // error of at most scale/2 (the representable span covers [mn, mx] to
    // within half a step on each side), which the differential tests'
    // proven bound relies on.
    const float lo = mn < 0.0f ? mn : 0.0f;
    const float hi = mx > 0.0f ? mx : 0.0f;
    params.scale = (hi - lo) / 255.0f;
    int32_t zero = RoundNearestInt(-lo / params.scale);
    if (zero < 0) zero = 0;
    if (zero > 255) zero = 255;
    params.zero = zero;
    const float inv = 1.0f / params.scale;
    int64_t i = 0;
#if EDDE_QUANTIZE_SSE2
    // 16 codes per step: multiply, RNE convert (cvtps2dq — the same
    // rounding as RoundNearestInt per lane), add the zero point, then the
    // two saturating packs realize exactly the scalar [0, 255] clamp
    // (codes fit int16: scale spans the row's range, so code + zero stays
    // within a few hundred).
    if (src_stride == 1) {
      const __m128 vinv = _mm_set1_ps(inv);
      const __m128i vzero = _mm_set1_epi32(zero);
      for (; i + 16 <= k; i += 16) {
        const __m128i c0 = _mm_add_epi32(
            _mm_cvtps_epi32(_mm_mul_ps(_mm_loadu_ps(src + i), vinv)), vzero);
        const __m128i c1 = _mm_add_epi32(
            _mm_cvtps_epi32(_mm_mul_ps(_mm_loadu_ps(src + i + 4), vinv)),
            vzero);
        const __m128i c2 = _mm_add_epi32(
            _mm_cvtps_epi32(_mm_mul_ps(_mm_loadu_ps(src + i + 8), vinv)),
            vzero);
        const __m128i c3 = _mm_add_epi32(
            _mm_cvtps_epi32(_mm_mul_ps(_mm_loadu_ps(src + i + 12), vinv)),
            vzero);
        const __m128i p01 = _mm_packs_epi32(c0, c1);
        const __m128i p23 = _mm_packs_epi32(c2, c3);
        _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                         _mm_packus_epi16(p01, p23));
      }
    }
#endif
    for (; i < k; ++i) {
      dst[i] = ActivationCode(src[i * src_stride], inv, zero);
    }
  } else {
    // Constant row: represent the single value exactly. q − z ∈ {−1, 0, 1}
    // with scale |v| covers every sign; all-zero rows use zero codes.
    const float v = mn;
    if (v == 0.0f) {
      params.scale = 1.0f;
      params.zero = 0;
      std::memset(dst, 0, static_cast<size_t>(k));
    } else {
      params.scale = std::fabs(v);
      params.zero = v > 0.0f ? 0 : 1;
      std::memset(dst, v > 0.0f ? 1 : 0, static_cast<size_t>(k));
    }
  }
  if (padded_k > k) {
    std::memset(dst + k, 0, static_cast<size_t>(padded_k - k));
  }
  return params;
}

}  // namespace edde
