// AVX-512 VNNI tier of the int8 inference GEMM. vpdpbusd fuses the u8×s8
// multiply, pair widening, and int32 accumulate that the AVX2 tier spells
// as vpmaddubsw + vpmaddwd + vpaddd — one instruction per 64 bytes of
// depth instead of three per 32 — and accumulates straight into int32
// with no int16 intermediate, so saturation is impossible at any code
// range. The arithmetic is exact integer work, which keeps this tier
// bit-identical to every other one. It is not a dispatch tier of its own:
// GemmKernel::kAvx2 swaps it in at runtime when the CPU has it
// (tensor/gemm_int8.cc). Compiled with the AVX-512 flags only in this
// translation unit (src/CMakeLists.txt); runtime detection guards every
// call.

#include "tensor/gemm_int8.h"

#include "utils/logging.h"

#if defined(__x86_64__) && defined(__AVX512F__) && defined(__AVX512BW__) && \
    defined(__AVX512VL__) && defined(__AVX512VNNI__)
#define EDDE_HAVE_INT8_VNNI_KERNEL 1
#include <immintrin.h>
#else
#define EDDE_HAVE_INT8_VNNI_KERNEL 0
#endif

namespace edde {
namespace gemm_internal {

#if EDDE_HAVE_INT8_VNNI_KERNEL

bool Int8VnniAvailable() {
  static const bool available = __builtin_cpu_supports("avx512f") &&
                                __builtin_cpu_supports("avx512bw") &&
                                __builtin_cpu_supports("avx512vl") &&
                                __builtin_cpu_supports("avx512vnni");
  return available;
}

namespace {

/// Folds each 512-bit accumulator to 256 bits (high half + low half), then
/// reduces the 8 rows with the same hadd tree the AVX2 tier uses — ~25
/// instructions for all 8 sums. Eight independent
/// _mm512_reduce_add_epi32 calls cost more than the dot products
/// themselves at the depths the layers use.
// GCC's _mm512_extracti64x4_epi64 passes _mm256_undefined_si256() as the
// (fully overwritten) mask pass-through, which trips -Wuninitialized
// (GCC PR105593); every lane is written, so silence the false positive.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
inline __m256i ReduceRows8Vnni(__m512i a0, __m512i a1, __m512i a2, __m512i a3,
                               __m512i a4, __m512i a5, __m512i a6,
                               __m512i a7) {
  const __m256i f0 = _mm256_add_epi32(_mm512_castsi512_si256(a0),
                                      _mm512_extracti64x4_epi64(a0, 1));
  const __m256i f1 = _mm256_add_epi32(_mm512_castsi512_si256(a1),
                                      _mm512_extracti64x4_epi64(a1, 1));
  const __m256i f2 = _mm256_add_epi32(_mm512_castsi512_si256(a2),
                                      _mm512_extracti64x4_epi64(a2, 1));
  const __m256i f3 = _mm256_add_epi32(_mm512_castsi512_si256(a3),
                                      _mm512_extracti64x4_epi64(a3, 1));
  const __m256i f4 = _mm256_add_epi32(_mm512_castsi512_si256(a4),
                                      _mm512_extracti64x4_epi64(a4, 1));
  const __m256i f5 = _mm256_add_epi32(_mm512_castsi512_si256(a5),
                                      _mm512_extracti64x4_epi64(a5, 1));
  const __m256i f6 = _mm256_add_epi32(_mm512_castsi512_si256(a6),
                                      _mm512_extracti64x4_epi64(a6, 1));
  const __m256i f7 = _mm256_add_epi32(_mm512_castsi512_si256(a7),
                                      _mm512_extracti64x4_epi64(a7, 1));
  const __m256i h01 = _mm256_hadd_epi32(f0, f1);
  const __m256i h23 = _mm256_hadd_epi32(f2, f3);
  const __m256i h45 = _mm256_hadd_epi32(f4, f5);
  const __m256i h67 = _mm256_hadd_epi32(f6, f7);
  const __m256i h0123 = _mm256_hadd_epi32(h01, h23);
  const __m256i h4567 = _mm256_hadd_epi32(h45, h67);
  const __m256i lo = _mm256_permute2x128_si256(h0123, h4567, 0x20);
  const __m256i hi = _mm256_permute2x128_si256(h0123, h4567, 0x31);
  return _mm256_add_epi32(lo, hi);
}
#pragma GCC diagnostic pop

}  // namespace

void MicroKernelInt8Vnni(int64_t kpad, const uint8_t* qa, const int8_t* w,
                         int64_t stride, int32_t* out8) {
  __m512i acc0 = _mm512_setzero_si512();
  __m512i acc1 = _mm512_setzero_si512();
  __m512i acc2 = _mm512_setzero_si512();
  __m512i acc3 = _mm512_setzero_si512();
  __m512i acc4 = _mm512_setzero_si512();
  __m512i acc5 = _mm512_setzero_si512();
  __m512i acc6 = _mm512_setzero_si512();
  __m512i acc7 = _mm512_setzero_si512();
  int64_t p = 0;
  for (; p + 64 <= kpad; p += 64) {
    const __m512i q = _mm512_loadu_si512(qa + p);
#define EDDE_INT8_VNNI_ROW(idx)                                            \
  {                                                                        \
    const __m512i wrow = _mm512_loadu_si512(w + (idx)*stride + p);         \
    acc##idx = _mm512_dpbusd_epi32(acc##idx, q, wrow);                     \
  }
    EDDE_INT8_VNNI_ROW(0)
    EDDE_INT8_VNNI_ROW(1)
    EDDE_INT8_VNNI_ROW(2)
    EDDE_INT8_VNNI_ROW(3)
    EDDE_INT8_VNNI_ROW(4)
    EDDE_INT8_VNNI_ROW(5)
    EDDE_INT8_VNNI_ROW(6)
    EDDE_INT8_VNNI_ROW(7)
#undef EDDE_INT8_VNNI_ROW
  }
  if (p < kpad) {
    // kpad is a multiple of kInt8KStride (32), so exactly one half-width
    // chunk remains. Masked loads keep every read inside the row (the
    // next weight row starts `stride` bytes in); masked-off bytes read as
    // zero and contribute nothing to the dot product.
    const __mmask64 low32 = 0xFFFFFFFFull;
    const __m512i q = _mm512_maskz_loadu_epi8(low32, qa + p);
#define EDDE_INT8_VNNI_TAIL(idx)                                           \
  {                                                                        \
    const __m512i wrow = _mm512_maskz_loadu_epi8(low32, w + (idx)*stride + p); \
    acc##idx = _mm512_dpbusd_epi32(acc##idx, q, wrow);                     \
  }
    EDDE_INT8_VNNI_TAIL(0)
    EDDE_INT8_VNNI_TAIL(1)
    EDDE_INT8_VNNI_TAIL(2)
    EDDE_INT8_VNNI_TAIL(3)
    EDDE_INT8_VNNI_TAIL(4)
    EDDE_INT8_VNNI_TAIL(5)
    EDDE_INT8_VNNI_TAIL(6)
    EDDE_INT8_VNNI_TAIL(7)
#undef EDDE_INT8_VNNI_TAIL
  }
  const __m256i sums =
      ReduceRows8Vnni(acc0, acc1, acc2, acc3, acc4, acc5, acc6, acc7);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out8), sums);
}

#else  // !EDDE_HAVE_INT8_VNNI_KERNEL

bool Int8VnniAvailable() { return false; }

void MicroKernelInt8Vnni(int64_t, const uint8_t*, const int8_t*, int64_t,
                         int32_t*) {
  EDDE_CHECK(false) << "int8 VNNI kernel not compiled in";
}

#endif

}  // namespace gemm_internal
}  // namespace edde
