#include "tensor/rng.h"

#include <cmath>

#include "utils/logging.h"

namespace edde {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * Uniform();
}

int64_t Rng::UniformInt(int64_t n) {
  EDDE_CHECK_GT(n, 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t un = static_cast<uint64_t>(n);
  const uint64_t limit = UINT64_MAX - UINT64_MAX % un;
  uint64_t x;
  do {
    x = NextU64();
  } while (x >= limit);
  return static_cast<int64_t>(x % un);
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1, u2;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  u2 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

int64_t Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    EDDE_CHECK_GE(w, 0.0) << "negative categorical weight";
    total += w;
  }
  EDDE_CHECK_GT(total, 0.0) << "categorical weights sum to zero";
  double u = Uniform() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u < acc) return static_cast<int64_t>(i);
  }
  return static_cast<int64_t>(weights.size()) - 1;
}

Rng Rng::Fork() { return Rng(NextU64()); }

RngState Rng::SaveState() const {
  RngState s;
  for (int i = 0; i < 4; ++i) s.state[i] = state_[i];
  s.has_cached_normal = has_cached_normal_;
  s.cached_normal = cached_normal_;
  return s;
}

void Rng::RestoreState(const RngState& s) {
  for (int i = 0; i < 4; ++i) state_[i] = s.state[i];
  has_cached_normal_ = s.has_cached_normal;
  cached_normal_ = s.cached_normal;
}

}  // namespace edde
