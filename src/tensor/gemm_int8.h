#ifndef EDDE_TENSOR_GEMM_INT8_H_
#define EDDE_TENSOR_GEMM_INT8_H_

#include <cstdint>

#include "tensor/gemm.h"
#include "tensor/quantize.h"

namespace edde {

// ---------------------------------------------------------------------------
// int8×int8→int32 inference GEMM (see DESIGN.md §13)
// ---------------------------------------------------------------------------
//
// Computes C[i,j] = op(A) row i · dequant(W row j) for a float activation
// matrix op(A) (m, k) against a per-channel-quantized weight matrix W
// (n = w.rows output channels, each of depth k = w.cols):
//
//   1. each activation row is dynamically quantized to u8 with a zero
//      point (shared scalar code for every kernel tier),
//   2. the u8·s8 dot products accumulate exactly in int32 (scalar loop,
//      compiler-vectorized portable loop, or AVX2 vpmaddubsw/vpmaddwd —
//      selected by the same ActiveGemmKernel() dispatch as the fp32 path
//      and recorded in the manifest as `gemm_int8_kernel`),
//   3. one shared float finalization applies the scales, the zero-point
//      correction via W's precomputed row sums, and the fused epilogue.
//
// Because step 2 is exact integer arithmetic (order-independent) and steps
// 1 and 3 are single shared code paths, the float output is bit-identical
// across *kernels* as well as thread counts — a stronger contract than the
// fp32 GEMM's per-kernel determinism.
//
// `trans_a`: op(A)(i, p) = a[p·lda + i] (absorbed by the quantization
// stage's strided reads; nothing is materialized). `trans_c` stores the
// logical (m, n) result transposed, C[i,j] at c[j·ldc + i] — the im2col
// convolution path writes its (OC, OH·OW) output directly this way.
//
// The epilogue bias always indexes the output channel j: pass
// Bias::kPerCol with !trans_c (dense layout, channels are columns) and
// Bias::kPerRow with trans_c (conv layout, channels are rows).
void GemmInt8(bool trans_a, bool trans_c, int64_t m, int64_t k,
              const float* a, int64_t lda, const QuantizedMatrix& w, float* c,
              int64_t ldc, const GemmEpilogue& epilogue = GemmEpilogue());

namespace gemm_internal {

/// True when the AVX2 int8 micro-kernel is compiled in and the CPU
/// supports it (same feature gate as the fp32 kernel).
bool Int8Avx2Available();

/// out8[0..7] = Σ_k qa[k]·w_row_r[k] for 8 consecutive weight rows starting
/// at `w` (each `stride` bytes apart, stride a multiple of kInt8KStride and
/// ≥ kpad). Implemented in gemm_int8_avx2.cc; call only when
/// Int8Avx2Available(). `qa` holds kpad bytes, kpad a multiple of
/// kInt8KStride.
void MicroKernelInt8Avx2(int64_t kpad, const uint8_t* qa, const int8_t* w,
                         int64_t stride, int32_t* out8);

/// True when the AVX-512 VNNI micro-kernel is compiled in and the CPU has
/// AVX-512 F/BW/VL/VNNI. VNNI is not a dispatch tier of its own: kAvx2
/// swaps it in at runtime when present (the fp32 path has no VNNI analog,
/// so EDDE_GEMM_KERNEL semantics are unchanged). Exact int32 accumulation
/// keeps the swap invisible in the output bits.
bool Int8VnniAvailable();

/// Same contract as MicroKernelInt8Avx2 (8 weight rows, exact int32 sums),
/// implemented with vpdpbusd over 64-byte chunks. Call only when
/// Int8VnniAvailable().
void MicroKernelInt8Vnni(int64_t kpad, const uint8_t* qa, const int8_t* w,
                         int64_t stride, int32_t* out8);

/// Process-wide switch for the VNNI drop-in (default on; setting
/// EDDE_INT8_VNNI=0 in the environment starts it off). bench_kernels and
/// the differential tests use it to pin the kAvx2 tier to the vpmaddubsw
/// path and compare the two sub-tiers bit-for-bit.
void SetInt8VnniEnabled(bool enabled);
bool Int8VnniEnabled();

/// 8-wide finalization for a contiguous output row: for j in [0, n8)
/// (n rounded down to 8, returned) computes
///   out[j] = (act_scale·w_scales[j]) · float(acc[j] − act_zero·row_sums[j])
/// [+ bias[j]] [relu] with exactly the scalar FinalizeRow's per-element
/// operations (32-bit correction — caller guarantees it cannot overflow —
/// separate multiplies/add, no FMA contraction), so output bits match the
/// scalar path. Call only when Int8Avx2Available().
int64_t FinalizeRowAvx2(float act_scale, int32_t act_zero,
                        const float* w_scales, const int32_t* row_sums,
                        const int32_t* acc, int64_t n, const float* bias,
                        bool relu, float* out);

}  // namespace gemm_internal

}  // namespace edde

#endif  // EDDE_TENSOR_GEMM_INT8_H_
