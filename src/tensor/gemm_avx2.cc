// AVX2/FMA specialization of the 6x16 GEMM micro-kernel. This translation
// unit is compiled with -mavx2 -mfma (see src/CMakeLists.txt) while the
// rest of the library stays at the project baseline, so everything here
// must be reached only through the runtime dispatch in gemm.cc.

#include "tensor/gemm.h"

#if defined(__x86_64__) && defined(__AVX2__) && defined(__FMA__)
#define EDDE_HAVE_AVX2_KERNEL 1
#include <immintrin.h>
#else
#define EDDE_HAVE_AVX2_KERNEL 0
#endif

#include "utils/logging.h"

namespace edde {
namespace gemm_internal {

#if EDDE_HAVE_AVX2_KERNEL

bool Avx2Available() {
  static const bool available =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return available;
}

void MicroKernelAvx2(int64_t kc, const float* ap, const float* bp,
                     float* acc) {
  // 6 rows x 2 vectors of 8 floats = 12 YMM accumulators; with the two B
  // vectors and one A broadcast that fills 15 of the 16 YMM registers.
  __m256 c00 = _mm256_setzero_ps(), c01 = _mm256_setzero_ps();
  __m256 c10 = _mm256_setzero_ps(), c11 = _mm256_setzero_ps();
  __m256 c20 = _mm256_setzero_ps(), c21 = _mm256_setzero_ps();
  __m256 c30 = _mm256_setzero_ps(), c31 = _mm256_setzero_ps();
  __m256 c40 = _mm256_setzero_ps(), c41 = _mm256_setzero_ps();
  __m256 c50 = _mm256_setzero_ps(), c51 = _mm256_setzero_ps();
  for (int64_t kk = 0; kk < kc; ++kk) {
    const __m256 b0 = _mm256_load_ps(bp);
    const __m256 b1 = _mm256_load_ps(bp + 8);
    bp += kNR;
    __m256 a;
    a = _mm256_broadcast_ss(ap + 0);
    c00 = _mm256_fmadd_ps(a, b0, c00);
    c01 = _mm256_fmadd_ps(a, b1, c01);
    a = _mm256_broadcast_ss(ap + 1);
    c10 = _mm256_fmadd_ps(a, b0, c10);
    c11 = _mm256_fmadd_ps(a, b1, c11);
    a = _mm256_broadcast_ss(ap + 2);
    c20 = _mm256_fmadd_ps(a, b0, c20);
    c21 = _mm256_fmadd_ps(a, b1, c21);
    a = _mm256_broadcast_ss(ap + 3);
    c30 = _mm256_fmadd_ps(a, b0, c30);
    c31 = _mm256_fmadd_ps(a, b1, c31);
    a = _mm256_broadcast_ss(ap + 4);
    c40 = _mm256_fmadd_ps(a, b0, c40);
    c41 = _mm256_fmadd_ps(a, b1, c41);
    a = _mm256_broadcast_ss(ap + 5);
    c50 = _mm256_fmadd_ps(a, b0, c50);
    c51 = _mm256_fmadd_ps(a, b1, c51);
    ap += kMR;
  }
  _mm256_store_ps(acc + 0 * kNR, c00);
  _mm256_store_ps(acc + 0 * kNR + 8, c01);
  _mm256_store_ps(acc + 1 * kNR, c10);
  _mm256_store_ps(acc + 1 * kNR + 8, c11);
  _mm256_store_ps(acc + 2 * kNR, c20);
  _mm256_store_ps(acc + 2 * kNR + 8, c21);
  _mm256_store_ps(acc + 3 * kNR, c30);
  _mm256_store_ps(acc + 3 * kNR + 8, c31);
  _mm256_store_ps(acc + 4 * kNR, c40);
  _mm256_store_ps(acc + 4 * kNR + 8, c41);
  _mm256_store_ps(acc + 5 * kNR, c50);
  _mm256_store_ps(acc + 5 * kNR + 8, c51);
}

#else  // !EDDE_HAVE_AVX2_KERNEL

bool Avx2Available() { return false; }

void MicroKernelAvx2(int64_t, const float*, const float*, float*) {
  EDDE_CHECK(false) << "AVX2 micro-kernel not compiled in";
}

#endif  // EDDE_HAVE_AVX2_KERNEL

}  // namespace gemm_internal
}  // namespace edde
