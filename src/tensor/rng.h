#ifndef EDDE_TENSOR_RNG_H_
#define EDDE_TENSOR_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace edde {

/// Complete serialized Rng state. Round-tripping through
/// SaveState/RestoreState resumes the stream bit-identically, including a
/// Box–Muller second normal cached mid-pair.
struct RngState {
  uint64_t state[4] = {0, 0, 0, 0};
  bool has_cached_normal = false;
  double cached_normal = 0.0;
};

/// Deterministic pseudo-random number generator (xoshiro256** seeded via
/// SplitMix64). Every stochastic component in the library draws from an
/// explicitly passed Rng so whole experiments replay bit-identically from a
/// single seed.
class Rng {
 public:
  /// Seeds the generator; identical seeds yield identical streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Uniform 64-bit integer.
  uint64_t NextU64();

  /// Uniform in [0, 1).
  double Uniform();

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  int64_t UniformInt(int64_t n);

  /// Standard normal via Box–Muller (cached second value).
  double Normal();

  /// Normal with given mean and stddev.
  double Normal(double mean, double stddev);

  /// Bernoulli(p).
  bool Bernoulli(double p);

  /// Samples an index from an (unnormalized) non-negative weight vector.
  /// Requires at least one strictly positive weight.
  int64_t Categorical(const std::vector<double>& weights);

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (int64_t i = static_cast<int64_t>(v->size()) - 1; i > 0; --i) {
      int64_t j = UniformInt(i + 1);
      std::swap((*v)[static_cast<size_t>(i)], (*v)[static_cast<size_t>(j)]);
    }
  }

  /// Derives an independent child generator (for reproducible sub-streams).
  Rng Fork();

  /// Snapshots the full generator state (checkpointing).
  RngState SaveState() const;

  /// Restores a snapshot; the stream continues exactly where it left off.
  void RestoreState(const RngState& s);

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace edde

#endif  // EDDE_TENSOR_RNG_H_
