#include "utils/table.h"

#include <cstdio>
#include <iomanip>

#include "utils/logging.h"

namespace edde {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  EDDE_CHECK(!header_.empty()) << "table needs at least one column";
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  EDDE_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      os << " " << std::left << std::setw(static_cast<int>(widths[c]))
         << row[c] << " |";
    }
    os << "\n";
  };
  print_row(header_);
  os << "|";
  for (size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::string FormatPercent(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f%%", value * 100.0);
  return buf;
}

std::string FormatFloat(double value, int digits) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

}  // namespace edde
