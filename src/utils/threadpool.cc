#include "utils/threadpool.h"

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "utils/arena.h"
#include "utils/logging.h"
#include "utils/metrics.h"
#include "utils/run_manifest.h"
#include "utils/trace.h"

namespace edde {

namespace {

// True while the current thread is executing a ParallelFor chunk (either as
// a pool worker or as the caller participating in its own region). Nested
// ParallelFor calls from such a thread run serially instead of deadlocking
// on the shared pool.
thread_local bool t_inside_parallel_region = false;

int HardwareThreads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

int ResolveDefaultThreads() {
  if (const char* env = std::getenv("EDDE_NUM_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1 && v <= 1024) {
      return static_cast<int>(v);
    }
    EDDE_LOG(WARNING) << "ignoring invalid EDDE_NUM_THREADS=\"" << env
                      << "\" (want an integer in [1, 1024])";
  }
  return HardwareThreads();
}

// One parallel region in flight. Workers pull chunk indices from `next`;
// holding the Task alive via shared_ptr means a worker that wakes up late
// only ever sees an exhausted counter, never a dangling callback.
struct Task {
  std::function<void(int64_t)> run_chunk;
  int64_t num_chunks = 0;
  std::atomic<int64_t> next{0};
  std::atomic<int64_t> pending{0};
  std::mutex err_mu;
  std::exception_ptr error;
};

class ThreadPool {
 public:
  explicit ThreadPool(int num_threads) {
    const int workers = num_threads - 1;
    workers_.reserve(static_cast<size_t>(workers > 0 ? workers : 0));
    for (int i = 0; i < workers; ++i) {
      workers_.emplace_back([this, i] { WorkerLoop(i); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    task_cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  int parallelism() const { return static_cast<int>(workers_.size()) + 1; }

  // Waits for the region currently in Run (if any) to finish. Run holds
  // run_mu_ for the whole region, so acquiring it here means every chunk
  // completed and the caller observed the region's side effects.
  void Quiesce() { std::lock_guard<std::mutex> lock(run_mu_); }

  // Runs fn(chunk) for every chunk in [0, num_chunks); the caller thread
  // participates. Serialized across callers so concurrent top-level regions
  // queue instead of interleaving half-sized slices.
  void Run(int64_t num_chunks, const std::function<void(int64_t)>& fn) {
    static Counter* const regions =
        MetricsRegistry::Global().GetCounter("threadpool.regions");
    static Counter* const chunks =
        MetricsRegistry::Global().GetCounter("threadpool.chunks");
    static const TraceRegion* const queue_wait =
        GetTraceRegion("threadpool.queue_wait");
    static const TraceRegion* const region_time =
        GetTraceRegion("threadpool.region");

    std::unique_lock<std::mutex> run_lock(run_mu_, std::defer_lock);
    {
      // Contention on run_mu_ is queue wait: time a concurrent caller's
      // region spends blocked behind the region currently in flight.
      TraceScope wait_scope(queue_wait);
      run_lock.lock();
    }
    TraceScope region_scope(region_time);
    regions->Increment();
    chunks->Increment(num_chunks);
    auto task = std::make_shared<Task>();
    task->run_chunk = fn;
    task->num_chunks = num_chunks;
    task->pending.store(num_chunks, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(mu_);
      current_ = task;
      ++generation_;
    }
    task_cv_.notify_all();

    t_inside_parallel_region = true;
    DrainChunks(task.get());
    t_inside_parallel_region = false;

    {
      std::unique_lock<std::mutex> lock(mu_);
      done_cv_.wait(lock, [&] {
        return task->pending.load(std::memory_order_acquire) == 0;
      });
      current_.reset();
    }
    if (task->error) std::rethrow_exception(task->error);
  }

 private:
  void DrainChunks(Task* task) {
    // One timeline span per drain: on a worker track this is the stripe of
    // a ParallelFor region that ran on that worker, nesting the caller's
    // own spans (trainer/epoch -> pool/drain) correctly.
    static const TraceRegion* const drain_region =
        GetTraceRegion("pool/drain");
    TraceScope drain_scope(drain_region);
    for (;;) {
      const int64_t chunk =
          task->next.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= task->num_chunks) break;
      try {
        task->run_chunk(chunk);
      } catch (...) {
        std::lock_guard<std::mutex> lock(task->err_mu);
        if (!task->error) task->error = std::current_exception();
      }
      if (task->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Last chunk: wake the caller. Taking mu_ orders the notify after
        // the caller's predicate check, so the wakeup cannot be lost.
        std::lock_guard<std::mutex> lock(mu_);
        done_cv_.notify_all();
      }
    }
  }

  void WorkerLoop(int worker_index) {
    char track_name[32];
    std::snprintf(track_name, sizeof(track_name), "pool/worker %d",
                  worker_index + 1);
    SetTraceThreadName(track_name);
    // Touch the worker's scratch arena up front so its thread_local is
    // constructed outside any timed region; kernels running on this worker
    // then bump-allocate from it with no lazy-init branch in the hot path.
    ScratchArena::ForCurrentThread();
    uint64_t seen_generation = 0;
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      task_cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      std::shared_ptr<Task> task = current_;
      lock.unlock();
      if (task != nullptr) {
        t_inside_parallel_region = true;
        DrainChunks(task.get());
        t_inside_parallel_region = false;
      }
      lock.lock();
    }
  }

  std::vector<std::thread> workers_;
  std::mutex run_mu_;  // serializes Run callers
  std::mutex mu_;      // guards generation_/current_/shutdown_
  std::condition_variable task_cv_;
  std::condition_variable done_cv_;
  uint64_t generation_ = 0;
  bool shutdown_ = false;
  std::shared_ptr<Task> current_;
};

std::mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool;  // guarded by g_pool_mu
int g_thread_override = 0;           // guarded by g_pool_mu; 0 = auto

ThreadPool* GetPool() {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  if (g_pool == nullptr) {
    const int n =
        g_thread_override > 0 ? g_thread_override : ResolveDefaultThreads();
    g_pool = std::make_unique<ThreadPool>(n);
    MetricsRegistry::Global()
        .GetGauge("threadpool.threads")
        ->Set(static_cast<double>(n));
    ManifestSetNumThreads(n);
  }
  return g_pool.get();
}

}  // namespace

int NumThreads() { return GetPool()->parallelism(); }

void QuiescePool() {
  if (t_inside_parallel_region) return;
  ThreadPool* pool = nullptr;
  {
    // Don't instantiate the pool just to wait on it: no pool ⇒ nothing in
    // flight. Drop g_pool_mu before blocking on run_mu_ so a concurrent
    // ParallelFor's GetPool() isn't serialized behind the drain.
    std::lock_guard<std::mutex> lock(g_pool_mu);
    pool = g_pool.get();
  }
  if (pool != nullptr) pool->Quiesce();
}

void SetNumThreads(int n) {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  g_thread_override = n > 0 ? n : 0;
  g_pool.reset();  // rebuilt lazily at the next ParallelFor / NumThreads
}

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn) {
  if (begin >= end) return;
  const int64_t range = end - begin;
  if (grain < 1) grain = 1;
  if (range <= grain || t_inside_parallel_region) {
    fn(begin, end);
    return;
  }
  ThreadPool* pool = GetPool();
  const int threads = pool->parallelism();
  if (threads <= 1) {
    fn(begin, end);
    return;
  }
  // Chunk size is a function of grain and range only — independent of the
  // thread count — so the chunk boundaries (and thus any per-chunk partial
  // reductions a caller combines in chunk order) are identical whether the
  // pool has 1 or 64 threads.
  const int64_t num_chunks = (range + grain - 1) / grain;
  pool->Run(num_chunks, [&](int64_t chunk) {
    const int64_t lo = begin + chunk * grain;
    const int64_t hi = lo + grain < end ? lo + grain : end;
    fn(lo, hi);
  });
}

}  // namespace edde
