#include "utils/socket.h"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace edde {

namespace {

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

/// send() the whole buffer, riding out EINTR and partial writes.
/// MSG_NOSIGNAL: a peer that closed mid-write must surface as EPIPE, not
/// kill the process with SIGPIPE. EAGAIN means an armed SO_SNDTIMEO
/// expired with the socket buffer still full — a deadline, not an IO
/// fault, so the caller can tell a slow reader from a dead one.
Status WriteAll(int fd, const char* data, size_t size) {
  size_t done = 0;
  while (done < size) {
    const ssize_t n = ::send(fd, data + done, size - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::DeadlineExceeded("socket send timed out");
      }
      return Status::IOError(Errno("socket write"));
    }
    if (n == 0) return Status::IOError("socket write: peer closed");
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// read() exactly `size` bytes. `*eof_at_start` reports a clean EOF before
/// the first byte (distinguishes "peer hung up between frames" from "frame
/// truncated mid-flight").
Status ReadAll(int fd, char* data, size_t size, bool* eof_at_start) {
  if (eof_at_start != nullptr) *eof_at_start = false;
  size_t done = 0;
  while (done < size) {
    const ssize_t n = ::read(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::DeadlineExceeded("socket read timed out");
      }
      return Status::IOError(Errno("socket read"));
    }
    if (n == 0) {
      if (done == 0 && eof_at_start != nullptr) {
        *eof_at_start = true;
        return Status::NotFound("peer closed the connection");
      }
      return Status::IOError("socket read: connection truncated mid-frame");
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

void UniqueFd::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

Result<UniqueFd> ListenTcp(uint16_t port, int backlog) {
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Status::IOError(Errno("socket"));
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Status::IOError(
        Errno("bind 127.0.0.1:" + std::to_string(port)));
  }
  if (::listen(fd.get(), backlog) != 0) {
    return Status::IOError(Errno("listen"));
  }
  return fd;
}

Result<uint16_t> LocalPort(int fd) {
  sockaddr_in addr;
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Status::IOError(Errno("getsockname"));
  }
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

Result<UniqueFd> AcceptConn(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      // Request/response frames are small; don't let Nagle add 40ms.
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return UniqueFd(fd);
    }
    if (errno == EINTR) continue;
    return Status::IOError(Errno("accept"));
  }
}

Result<UniqueFd> ConnectTcp(const std::string& host, uint16_t port) {
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Status::IOError(Errno("socket"));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not a numeric IPv4 address: " + host);
  }
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    return Status::IOError(
        Errno("connect " + host + ":" + std::to_string(port)));
  }
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

namespace {

Status SetIoTimeout(int fd, int optname, const char* what,
                    int64_t timeout_ms) {
  timeval tv;
  if (timeout_ms <= 0) {
    tv.tv_sec = 0;  // 0 = kernel default: block indefinitely
    tv.tv_usec = 0;
  } else {
    tv.tv_sec = static_cast<time_t>(timeout_ms / 1000);
    tv.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
  }
  if (::setsockopt(fd, SOL_SOCKET, optname, &tv, sizeof(tv)) != 0) {
    return Status::IOError(Errno(what));
  }
  return Status::OK();
}

}  // namespace

Status SetSendTimeout(int fd, int64_t timeout_ms) {
  return SetIoTimeout(fd, SO_SNDTIMEO, "setsockopt SO_SNDTIMEO", timeout_ms);
}

Status SetRecvTimeout(int fd, int64_t timeout_ms) {
  return SetIoTimeout(fd, SO_RCVTIMEO, "setsockopt SO_RCVTIMEO", timeout_ms);
}

Status SendFrame(int fd, const std::string& payload) {
  if (payload.size() > kMaxFrameBytes) {
    return Status::InvalidArgument(
        "frame payload of " + std::to_string(payload.size()) +
        " bytes exceeds kMaxFrameBytes");
  }
  const uint32_t len = static_cast<uint32_t>(payload.size());
  char prefix[4] = {static_cast<char>(len & 0xFF),
                    static_cast<char>((len >> 8) & 0xFF),
                    static_cast<char>((len >> 16) & 0xFF),
                    static_cast<char>((len >> 24) & 0xFF)};
  EDDE_RETURN_NOT_OK(WriteAll(fd, prefix, sizeof(prefix)));
  return WriteAll(fd, payload.data(), payload.size());
}

Status RecvFrame(int fd, std::string* payload) {
  char prefix[4];
  bool eof_at_start = false;
  EDDE_RETURN_NOT_OK(ReadAll(fd, prefix, sizeof(prefix), &eof_at_start));
  const uint32_t len = static_cast<uint32_t>(
      static_cast<unsigned char>(prefix[0]) |
      (static_cast<unsigned char>(prefix[1]) << 8) |
      (static_cast<unsigned char>(prefix[2]) << 16) |
      (static_cast<unsigned char>(prefix[3]) << 24));
  if (len > kMaxFrameBytes) {
    return Status::InvalidArgument(
        "frame length prefix " + std::to_string(len) +
        " exceeds kMaxFrameBytes — dropping the connection");
  }
  payload->assign(static_cast<size_t>(len), '\0');
  if (len == 0) return Status::OK();
  return ReadAll(fd, payload->data(), payload->size(), nullptr);
}

}  // namespace edde
