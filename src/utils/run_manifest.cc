#include "utils/run_manifest.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <mutex>

#include <unistd.h>

#include "utils/metrics.h"

namespace edde {

namespace {

/// Crash-handler copy of the serialized manifest. 16 KiB covers hundreds
/// of flags/datasets; overflow truncates (the buffer always stays
/// NUL-terminated valid prefix + marker).
constexpr size_t kSignalBufferSize = 16 * 1024;
char g_signal_json[kSignalBufferSize] = "{}";

std::string DescribeBuildType() {
  std::string type;
  // __OPTIMIZE__ rather than NDEBUG: the build keeps asserts on in -O2.
#if defined(__OPTIMIZE__)
  type = "optimized";
#else
  type = "debug";
#endif
#if defined(__SANITIZE_ADDRESS__)
  type += "+asan";
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
  type += "+asan";
#endif
#endif
#if defined(__SANITIZE_THREAD__)
  type += "+tsan";
#endif
  return type;
}

std::string FormatStartTimeUtc(std::time_t t) {
  std::tm tm_utc{};
  gmtime_r(&t, &tm_utc);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  return buf;
}

struct ManifestState {
  std::mutex mu;
  RunManifest manifest;

  ManifestState() {
    const auto now = std::chrono::system_clock::now();
    const std::time_t t = std::chrono::system_clock::to_time_t(now);
    manifest.compiler = __VERSION__;
    manifest.build_type = DescribeBuildType();
    manifest.start_time_utc = FormatStartTimeUtc(t);
    manifest.start_unix_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            now.time_since_epoch())
            .count();
    manifest.pid = static_cast<int>(::getpid());
    if (const char* env = std::getenv("EDDE_NUM_THREADS")) {
      manifest.num_threads_env = env;
    }
  }
};

// Leaked singleton, same reasoning as MetricsRegistry: the crash handler
// and at-exit dumps must be able to read it at any point of shutdown.
ManifestState& State() {
  static ManifestState* state = new ManifestState();
  return *state;
}

std::string SerializeLocked(const RunManifest& m) {
  std::string flags = "{";
  for (size_t i = 0; i < m.flags.size(); ++i) {
    if (i > 0) flags += ',';
    flags += '"' + JsonBuilder::Escape(m.flags[i].first) + "\":\"" +
             JsonBuilder::Escape(m.flags[i].second) + '"';
  }
  flags += '}';
  std::string datasets = "{";
  for (size_t i = 0; i < m.datasets.size(); ++i) {
    if (i > 0) datasets += ',';
    char hex[24];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(m.datasets[i].second));
    datasets += '"' + JsonBuilder::Escape(m.datasets[i].first) + "\":\"" +
                hex + '"';
  }
  datasets += '}';
  return JsonBuilder()
      .Add("schema", 1)
      .Add("program", m.program)
      .Add("compiler", m.compiler)
      .Add("build_type", m.build_type)
      .Add("start_time_utc", m.start_time_utc)
      .Add("start_unix_ms", m.start_unix_ms)
      .Add("pid", m.pid)
      .Add("seed", static_cast<int64_t>(m.seed))
      .Add("num_threads", m.num_threads)
      .Add("num_threads_env", m.num_threads_env)
      .AddRaw("flags", flags)
      .AddRaw("datasets", datasets)
      .Build();
}

/// Re-serializes into the signal buffer. Called with the manifest lock
/// held, so writers never interleave; the signal handler reads without the
/// lock and tolerates a stale snapshot.
void RefreshSignalBufferLocked(const RunManifest& m) {
  const std::string json = SerializeLocked(m);
  const size_t n = json.size() < kSignalBufferSize - 1
                       ? json.size()
                       : kSignalBufferSize - 1;
  std::memcpy(g_signal_json, json.data(), n);
  g_signal_json[n] = '\0';
}

}  // namespace

RunManifest GetRunManifest() {
  ManifestState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.manifest;
}

void ManifestSetProgram(const std::string& program) {
  // Basename only: the build directory carries no provenance.
  std::string base = program;
  const auto slash = base.find_last_of('/');
  if (slash != std::string::npos) base = base.substr(slash + 1);
  ManifestState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  state.manifest.program = base;
  RefreshSignalBufferLocked(state.manifest);
}

void ManifestSetSeed(uint64_t seed) {
  ManifestState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  state.manifest.seed = seed;
  RefreshSignalBufferLocked(state.manifest);
}

void ManifestSetNumThreads(int num_threads) {
  ManifestState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  state.manifest.num_threads = num_threads;
  RefreshSignalBufferLocked(state.manifest);
}

void ManifestSetFlag(const std::string& name, const std::string& value) {
  ManifestState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  for (auto& [flag, old_value] : state.manifest.flags) {
    if (flag == name) {
      old_value = value;
      RefreshSignalBufferLocked(state.manifest);
      return;
    }
  }
  state.manifest.flags.emplace_back(name, value);
  RefreshSignalBufferLocked(state.manifest);
}

void ManifestAddDataset(const std::string& name, uint64_t fingerprint) {
  ManifestState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  for (auto& [dataset, old_fp] : state.manifest.datasets) {
    if (dataset == name) {
      old_fp = fingerprint;
      RefreshSignalBufferLocked(state.manifest);
      return;
    }
  }
  state.manifest.datasets.emplace_back(name, fingerprint);
  RefreshSignalBufferLocked(state.manifest);
}

std::string RunManifestJson() {
  ManifestState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  // First serialization also primes the signal buffer, so even a process
  // that never touches a setter crashes with compiler/pid/start-time set.
  RefreshSignalBufferLocked(state.manifest);
  return SerializeLocked(state.manifest);
}

const char* RunManifestJsonForSignal() { return g_signal_json; }

uint64_t FingerprintBytes(const void* data, size_t size, uint64_t basis) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint64_t hash = basis;
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 1099511628211ull;
  }
  return hash;
}

}  // namespace edde
