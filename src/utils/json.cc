#include "utils/json.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "utils/logging.h"

namespace edde {

bool JsonValue::AsBool() const {
  EDDE_CHECK(is_bool());
  return bool_;
}

double JsonValue::AsNumber() const {
  EDDE_CHECK(is_number());
  return number_;
}

const std::string& JsonValue::AsString() const {
  EDDE_CHECK(is_string());
  return string_;
}

const std::vector<JsonValue>& JsonValue::AsArray() const {
  EDDE_CHECK(is_array());
  return array_;
}

double JsonValue::NumberOrNaN() const {
  if (is_null()) return std::numeric_limits<double>::quiet_NaN();
  EDDE_CHECK(is_number()) << "NumberOrNaN on a non-number, non-null value";
  return number_;
}

bool JsonValue::Has(const std::string& key) const {
  return Get(key) != nullptr;
}

const JsonValue* JsonValue::Get(const std::string& key) const {
  if (!is_object()) return nullptr;
  auto it = index_.find(key);
  return it == index_.end() ? nullptr : &members_[it->second];
}

double JsonValue::GetNumberOr(const std::string& key, double fallback) const {
  const JsonValue* v = Get(key);
  return v != nullptr && v->is_number() ? v->number_ : fallback;
}

double JsonValue::GetNumberOrNaN(const std::string& key) const {
  const JsonValue* v = Get(key);
  if (v == nullptr || (!v->is_number() && !v->is_null())) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return v->NumberOrNaN();
}

std::string JsonValue::GetStringOr(const std::string& key,
                                   const std::string& fallback) const {
  const JsonValue* v = Get(key);
  return v != nullptr && v->is_string() ? v->string_ : fallback;
}

const std::vector<std::string>& JsonValue::ObjectKeys() const {
  return keys_;
}

/// Recursive-descent parser over the document string. Depth-limited so a
/// pathological input fails with a Status instead of a stack overflow.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Status ParseDocument(JsonValue* out) {
    Status status = ParseValue(out, /*depth=*/0);
    if (!status.ok()) return status;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return Status::OK();
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& message) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + message);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->kind_ = JsonValue::Kind::kString;
        return ParseString(&out->string_);
      case 't':
      case 'f':
        return ParseLiteral(out);
      case 'n':
        return ParseLiteral(out);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    out->kind_ = JsonValue::Kind::kObject;
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      std::string key;
      Status status = ParseString(&key);
      if (!status.ok()) return status;
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      JsonValue value;
      status = ParseValue(&value, depth + 1);
      if (!status.ok()) return status;
      // Duplicate keys: last one wins, like most readers.
      auto it = out->index_.find(key);
      if (it != out->index_.end()) {
        out->members_[it->second] = std::move(value);
      } else {
        out->index_[key] = out->members_.size();
        out->keys_.push_back(key);
        out->members_.push_back(std::move(value));
      }
      SkipWhitespace();
      if (Consume('}')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    out->kind_ = JsonValue::Kind::kArray;
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    for (;;) {
      JsonValue element;
      Status status = ParseValue(&element, depth + 1);
      if (!status.ok()) return status;
      out->array_.push_back(std::move(element));
      SkipWhitespace();
      if (Consume(']')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("invalid \\u escape digit");
            }
          }
          // UTF-8 encode the code point (surrogate pairs are passed through
          // as two 3-byte sequences — enough for our own ASCII output).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
    return Error("unterminated string");
  }

  Status ParseLiteral(JsonValue* out) {
    auto match = [&](const char* word) {
      const size_t len = std::string(word).size();
      if (text_.compare(pos_, len, word) != 0) return false;
      pos_ += len;
      return true;
    };
    if (match("true")) {
      out->kind_ = JsonValue::Kind::kBool;
      out->bool_ = true;
      return Status::OK();
    }
    if (match("false")) {
      out->kind_ = JsonValue::Kind::kBool;
      out->bool_ = false;
      return Status::OK();
    }
    if (match("null")) {
      out->kind_ = JsonValue::Kind::kNull;
      return Status::OK();
    }
    return Error("invalid literal");
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      return Error("malformed number: " + token);
    }
    out->kind_ = JsonValue::Kind::kNumber;
    out->number_ = v;
    return Status::OK();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

Status JsonValue::Parse(const std::string& text, JsonValue* out) {
  EDDE_CHECK(out != nullptr);
  *out = JsonValue();
  return JsonParser(text).ParseDocument(out);
}

Status JsonValue::ParseFile(const std::string& path, JsonValue* out) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IOError("cannot open JSON file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return Parse(buffer.str(), out);
}

}  // namespace edde
