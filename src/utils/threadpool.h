#ifndef EDDE_UTILS_THREADPOOL_H_
#define EDDE_UTILS_THREADPOOL_H_

#include <cstdint>
#include <functional>

namespace edde {

/// Shared parallel-execution substrate.
///
/// All intra-op (tensor kernels) and inter-op (ensemble members, probe
/// students) parallelism in EDDE goes through ParallelFor below, backed by
/// one lazily created process-wide worker pool. The pool size defaults to
/// std::thread::hardware_concurrency and can be overridden either by the
/// EDDE_NUM_THREADS environment variable (read once, at first use) or
/// programmatically via SetNumThreads.
///
/// Determinism contract: ParallelFor splits [begin, end) into contiguous
/// chunks and invokes `fn(chunk_begin, chunk_end)` exactly once per chunk.
/// Each chunk runs serially in index order inside one worker, so per-row
/// reductions keep their serial accumulation order. Kernels that only write
/// disjoint rows therefore produce bit-identical results for every thread
/// count, including 1. Cross-chunk reductions are the caller's
/// responsibility and must combine partials in chunk order to stay
/// deterministic.

/// Number of threads ParallelFor may use (>= 1). Resolves, in order:
/// SetNumThreads override, EDDE_NUM_THREADS, hardware_concurrency.
int NumThreads();

/// Overrides the pool size. `n <= 0` restores the default resolution
/// (EDDE_NUM_THREADS / hardware_concurrency). Must not be called while
/// parallel work is in flight; intended for tests, benches and main().
void SetNumThreads(int n);

/// Runs `fn(chunk_begin, chunk_end)` over contiguous chunks covering
/// [begin, end). Chunks contain at least `grain` indices (except possibly
/// the last), so callers pick `grain` such that one grain amortizes the
/// scheduling overhead. Runs serially when the range is at most one grain,
/// when the pool has one thread, or when called from inside another
/// ParallelFor (no nested parallelism). Blocks until every chunk finished;
/// the first exception thrown by `fn` is rethrown in the caller.
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn);

/// Blocks until any in-flight ParallelFor region has fully drained.
///
/// The graceful-shutdown path calls this before flushing the metrics/trace
/// sinks: a SIGINT/SIGTERM safe point can be reached by one thread while
/// another still has a ParallelFor in flight, and flushing concurrently
/// with its workers' metric writes can tear the final JSONL lines. No-op
/// when the pool was never created or when called from inside a parallel
/// region (workers must not wait on themselves).
void QuiescePool();

}  // namespace edde

#endif  // EDDE_UTILS_THREADPOOL_H_
