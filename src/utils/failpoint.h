#ifndef EDDE_UTILS_FAILPOINT_H_
#define EDDE_UTILS_FAILPOINT_H_

#include <atomic>
#include <cstddef>
#include <string>

#include "utils/status.h"

namespace edde {
namespace failpoint {

/// Deterministic fault injection for the durability subsystem.
///
/// A *failpoint* is a named site in the code (`EDDE_FAILPOINT("durable.rename")`)
/// that normally does nothing. Activating a site — via the EDDE_FAILPOINTS
/// environment variable or SetSpec() — makes the site inject one of four
/// faults, so the checkpoint/resume machinery can be proven against every
/// crash and corruption mode it claims to survive (see DESIGN.md §11 and
/// tests/checkpoint_resume_test.cc).
///
/// Spec grammar (comma-separated):
///   site=error        every hit returns Status::IOError
///   site=error:N      the first N hits fail, later hits succeed
///                     (exercises the durable-IO retry/backoff path)
///   site=crash        _exit(kCrashExitCode) on the first hit — simulates
///                     `kill -9` / power loss; no destructors, no flushes
///   site=crash:N      crash on the Nth hit instead of the first
///   site=short_write  the durable writer drops the final bytes of the file
///                     before commit (default 16; `short_write:N` drops N) —
///                     simulates a torn write the CRC framing must catch
///   site=delay:N      sleep N milliseconds per hit (race-window widening)
///
/// Cost contract: when no spec is armed, a compiled-in site is exactly one
/// relaxed atomic load and an untaken branch. Results are bit-identical
/// with the framework compiled in but inactive.
///
/// The active spec is recorded in the run manifest (key "failpoints"), so
/// any artifact produced under fault injection says so.

/// Exit code used by the `crash` action (raw _exit, skips atexit/flushes).
inline constexpr int kCrashExitCode = 42;

/// Canonical site catalog. Sites are plain string literals, so this list is
/// documentation + torture-test input rather than an enforced registry;
/// keep it in sync with DESIGN.md §11 when adding sites.
///
/// Ordering matters: the first kNumTrainingSites entries are on the
/// training/checkpoint path and are what the checkpoint torture test
/// crashes at (every one must be hit by a short training run). Entries
/// after that belong to other subsystems (shutdown, serving) with their
/// own failpoint-driven tests.
inline constexpr const char* kSites[] = {
    "durable.write",     // payload written to the temp file (short_write here)
    "durable.fsync",     // fsync of the temp file before rename
    "durable.rename",    // rename(temp -> final)
    "durable.dirsync",   // fsync of the parent directory after rename
    "checkpoint.round",  // round boundary, before the generation write
    "checkpoint.commit", // generation committed, before rotation/cleanup
    "trainer.epoch",     // epoch boundary, after the inflight checkpoint
    // --- non-training sites below (not part of the checkpoint torture) ---
    "shutdown.flush",    // after the pool drain, before the sink flush
    "serve.accept",      // connection accepted, before the reader starts
    "serve.batch",       // batch formed, before member evaluation
    "serve.http",        // http request parsed, before handler dispatch
    "serve.reload.read", // hot reload: before the new artifact is read
    "serve.reload.swap", // hot reload: candidate validated, before the swap
    "serve.deadline",    // batch dispatch, before the deadline-shed check
    "serve.write",       // ordered writer, before each response frame send
};
inline constexpr size_t kNumSites = sizeof(kSites) / sizeof(kSites[0]);
inline constexpr size_t kNumTrainingSites = 7;
static_assert(kNumTrainingSites <= kNumSites);

/// Parses and arms `spec` (replacing any previous spec). Empty spec is
/// equivalent to Clear(). Invalid specs return InvalidArgument and leave
/// the previous spec armed.
Status SetSpec(const std::string& spec);

/// Disarms every site.
void Clear();

/// Arms from the EDDE_FAILPOINTS environment variable (no-op when unset).
/// Called by ApplyCommonFlags; library embedders call SetSpec directly.
void InitFromEnv();

/// True when any site is armed (the fast-path gate).
bool AnyActive();

/// The currently armed spec ("" when disarmed).
std::string CurrentSpec();

/// Slow path behind EDDE_FAILPOINT: applies the armed action for `site`.
/// error -> non-OK Status; crash -> _exit; delay -> sleep; otherwise OK.
Status Hit(const char* site);

/// Bytes the durable writer should drop from the tail of the file when
/// `site` is armed with short_write; 0 otherwise. Consults but does not
/// consume the spec (every write through the site is torn).
size_t ShortWriteBytes(const char* site);

namespace internal {
/// Fast-path gate: false ⇒ EDDE_FAILPOINT is one relaxed load.
extern std::atomic<bool> g_armed;
}  // namespace internal

}  // namespace failpoint
}  // namespace edde

/// Fire-and-forget site (crash / delay actions; an armed `error` action is
/// ignored here — use EDDE_FAILPOINT_STATUS where a Status can propagate).
#define EDDE_FAILPOINT(site)                                          \
  do {                                                                \
    if (::edde::failpoint::internal::g_armed.load(                    \
            std::memory_order_relaxed)) {                             \
      (void)::edde::failpoint::Hit(site);                             \
    }                                                                 \
  } while (false)

/// Status-propagating site: an armed `error` action returns the injected
/// Status from the enclosing function.
#define EDDE_FAILPOINT_STATUS(site)                                   \
  do {                                                                \
    if (::edde::failpoint::internal::g_armed.load(                    \
            std::memory_order_relaxed)) {                             \
      ::edde::Status _fp_status = ::edde::failpoint::Hit(site);       \
      if (!_fp_status.ok()) return _fp_status;                        \
    }                                                                 \
  } while (false)

#endif  // EDDE_UTILS_FAILPOINT_H_
