#include "utils/durable_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <thread>

#include "utils/failpoint.h"
#include "utils/logging.h"
#include "utils/metrics.h"

namespace edde {

namespace {

const uint32_t* Crc32Table() {
  static const uint32_t* table = [] {
    auto* t = new uint32_t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32(const void* data, size_t size, uint32_t crc) {
  const uint32_t* table = Crc32Table();
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t c = crc ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::string TempPathFor(const std::string& path) {
  return path + ".tmp." + std::to_string(::getpid());
}

namespace {

bool IsTransientErrno(int err) { return err == EINTR || err == EAGAIN; }

void Backoff(const DurableIoOptions& options, int attempt) {
  int ms = options.backoff_ms << attempt;  // 5, 10, 20, ...
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

// Injected failpoint errors are treated as transient so `site=error:N`
// specs exercise the retry path end to end.
Status HitSite(const char* site) {
  if (!failpoint::AnyActive()) return Status::OK();
  return failpoint::Hit(site);
}

// Creates the staging file and lands the payload + fsync in it.
// One attempt; the caller retries.
Status WriteTempOnce(const std::string& temp, const void* data, size_t size) {
  EDDE_RETURN_NOT_OK(HitSite("durable.write"));
  int fd = ::open(temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IOError("open(" + temp + "): " + std::strerror(errno));
  }
  // An armed short_write drops the tail of the payload but lets the commit
  // proceed — the torn-write scenario the CRC framing must catch on load.
  size_t drop = failpoint::ShortWriteBytes("durable.write");
  size_t to_write = drop >= size ? 0 : size - drop;
  const char* p = static_cast<const char*>(data);
  size_t written = 0;
  while (written < to_write) {
    ssize_t n = ::write(fd, p + written, to_write - written);
    if (n < 0) {
      if (IsTransientErrno(errno)) continue;
      int err = errno;
      ::close(fd);
      return Status::IOError("write(" + temp + "): " + std::strerror(err));
    }
    written += static_cast<size_t>(n);
  }
  Status fp = HitSite("durable.fsync");
  if (!fp.ok()) {
    ::close(fd);
    return fp;
  }
  if (::fsync(fd) != 0) {
    int err = errno;
    ::close(fd);
    return Status::IOError("fsync(" + temp + "): " + std::strerror(err));
  }
  if (::close(fd) != 0) {
    return Status::IOError("close(" + temp + "): " + std::strerror(errno));
  }
  return Status::OK();
}

Status RenameOnce(const std::string& temp, const std::string& path) {
  EDDE_RETURN_NOT_OK(HitSite("durable.rename"));
  if (::rename(temp.c_str(), path.c_str()) != 0) {
    return Status::IOError("rename(" + temp + " -> " + path +
                           "): " + std::strerror(errno));
  }
  return Status::OK();
}

// fsync of the parent directory persists the rename itself. A failure here
// means the commit may not survive power loss, but the in-flight process
// state is fine — log and carry on rather than failing the write.
void SyncParentDir(const std::string& path) {
  Status fp = HitSite("durable.dirsync");
  std::string dir = ".";
  size_t slash = path.find_last_of('/');
  if (slash != std::string::npos) dir = path.substr(0, slash);
  if (dir.empty()) dir = "/";
  if (!fp.ok()) {
    EDDE_LOG(WARNING) << "skipping dir fsync for " << path << ": "
                      << fp.ToString();
    return;
  }
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    EDDE_LOG(WARNING) << "cannot open dir " << dir
                      << " for fsync: " << std::strerror(errno);
    return;
  }
  if (::fsync(fd) != 0) {
    EDDE_LOG(WARNING) << "dir fsync(" << dir
                      << ") failed: " << std::strerror(errno);
  }
  ::close(fd);
}

Status Retried(const char* what, const DurableIoOptions& options,
               const std::function<Status()>& op) {
  Status last;
  for (int attempt = 0; attempt < options.max_attempts; ++attempt) {
    if (attempt > 0) {
      Backoff(options, attempt - 1);
      MetricsRegistry::Global().GetCounter("durable.retries")->Increment();
    }
    last = op();
    if (last.ok()) return last;
    EDDE_LOG(WARNING) << what << " attempt " << (attempt + 1) << "/"
                      << options.max_attempts << " failed: "
                      << last.ToString();
  }
  return last;
}

}  // namespace

Status AtomicCommit(const std::string& path, const void* data, size_t size,
                    const DurableIoOptions& options) {
  const std::string temp = TempPathFor(path);
  Status s = Retried("durable write", options, [&] {
    return WriteTempOnce(temp, data, size);
  });
  if (s.ok()) {
    s = Retried("durable rename", options,
                [&] { return RenameOnce(temp, path); });
  }
  if (!s.ok()) {
    ::unlink(temp.c_str());  // never leave a stale staging file behind
    MetricsRegistry::Global().GetCounter("durable.commit_failures")
        ->Increment();
    return s;
  }
  SyncParentDir(path);
  MetricsRegistry::Global().GetCounter("durable.commits")->Increment();
  return Status::OK();
}

Status AtomicWriteFile(const std::string& path, const std::string& contents,
                       const DurableIoOptions& options) {
  return AtomicCommit(path, contents.data(), contents.size(), options);
}

AtomicFileWriter::AtomicFileWriter(std::string path, DurableIoOptions options)
    : path_(std::move(path)), options_(options) {}

void AtomicFileWriter::Append(const void* data, size_t size) {
  buffer_.append(static_cast<const char*>(data), size);
}

Status AtomicFileWriter::Commit() {
  return AtomicCommit(path_, buffer_.data(), buffer_.size(), options_);
}

void SectionWriter::WriteBytes(const void* data, size_t count) {
  payload_.append(static_cast<const char*>(data), count);
}

void SectionWriter::WriteU32(uint32_t v) { WriteBytes(&v, sizeof(v)); }
void SectionWriter::WriteU64(uint64_t v) { WriteBytes(&v, sizeof(v)); }
void SectionWriter::WriteI64(int64_t v) { WriteBytes(&v, sizeof(v)); }
void SectionWriter::WriteF32(float v) { WriteBytes(&v, sizeof(v)); }
void SectionWriter::WriteF64(double v) { WriteBytes(&v, sizeof(v)); }

void SectionWriter::WriteString(const std::string& s) {
  WriteU64(s.size());
  WriteBytes(s.data(), s.size());
}

void SectionWriter::WriteFloats(const float* data, size_t count) {
  WriteBytes(data, count * sizeof(float));
}

void SectionWriter::WriteDoubles(const double* data, size_t count) {
  WriteBytes(data, count * sizeof(double));
}

void SectionWriter::AppendTo(BinaryWriter* out, uint32_t tag,
                             uint32_t version) const {
  out->WriteU32(tag);
  out->WriteU32(version);
  out->WriteU64(payload_.size());
  out->WriteBytes(payload_.data(), payload_.size());
  out->WriteU32(Crc32(payload_.data(), payload_.size()));
}

Status SectionReader::Load(BinaryReader* in, uint32_t expected_tag) {
  uint32_t tag = 0;
  uint32_t version = 0;
  uint64_t size = 0;
  if (!in->ReadU32(&tag) || !in->ReadU32(&version) || !in->ReadU64(&size)) {
    return Status::Corruption("truncated section header");
  }
  if (expected_tag != 0 && tag != expected_tag) {
    return Status::Corruption("section tag mismatch: expected " +
                              std::to_string(expected_tag) + ", found " +
                              std::to_string(tag));
  }
  // The CRC trailer must also fit, so the payload can claim at most
  // remaining − 4 bytes. Checked before the resize: a bit-flipped size
  // field must not drive a huge allocation.
  if (in->remaining() < sizeof(uint32_t) ||
      size > in->remaining() - sizeof(uint32_t)) {
    return Status::Corruption("section payload exceeds remaining file bytes");
  }
  std::string payload;
  payload.resize(size);
  if (size > 0 && !in->ReadRaw(payload.data(), size)) {
    return Status::Corruption("truncated section payload");
  }
  uint32_t stored_crc = 0;
  if (!in->ReadU32(&stored_crc)) {
    return Status::Corruption("truncated section CRC");
  }
  uint32_t actual_crc = Crc32(payload.data(), payload.size());
  if (stored_crc != actual_crc) {
    return Status::Corruption("section CRC mismatch (tag " +
                              std::to_string(tag) + ")");
  }
  tag_ = tag;
  version_ = version;
  payload_ = std::move(payload);
  offset_ = 0;
  status_ = Status::OK();
  return Status::OK();
}

void SectionReader::InitFromPayload(std::string payload) {
  tag_ = 0;
  version_ = 0;
  payload_ = std::move(payload);
  offset_ = 0;
  status_ = Status::OK();
}

bool SectionReader::ReadBytes(void* dst, size_t count) {
  if (!status_.ok()) return false;
  if (count > remaining()) {
    status_ = Status::Corruption("read past end of section payload");
    return false;
  }
  std::memcpy(dst, payload_.data() + offset_, count);
  offset_ += count;
  return true;
}

std::string SectionReader::TakeRemaining() {
  std::string out = payload_.substr(offset_);
  offset_ = payload_.size();
  return out;
}

bool SectionReader::ReadU32(uint32_t* v) { return ReadBytes(v, sizeof(*v)); }
bool SectionReader::ReadU64(uint64_t* v) { return ReadBytes(v, sizeof(*v)); }
bool SectionReader::ReadI64(int64_t* v) { return ReadBytes(v, sizeof(*v)); }
bool SectionReader::ReadF32(float* v) { return ReadBytes(v, sizeof(*v)); }
bool SectionReader::ReadF64(double* v) { return ReadBytes(v, sizeof(*v)); }

bool SectionReader::ReadString(std::string* s) {
  uint64_t size = 0;
  if (!ReadU64(&size)) return false;
  if (size > remaining()) {
    status_ =
        Status::Corruption("string length exceeds remaining section bytes");
    return false;
  }
  s->resize(size);
  return size == 0 || ReadBytes(s->data(), size);
}

bool SectionReader::ReadFloats(float* data, size_t count) {
  if (!status_.ok()) return false;
  if (count > remaining() / sizeof(float)) {
    status_ =
        Status::Corruption("float array exceeds remaining section bytes");
    return false;
  }
  return ReadBytes(data, count * sizeof(float));
}

bool SectionReader::ReadRaw(void* dst, size_t count) {
  return ReadBytes(dst, count);
}

bool SectionReader::ReadDoubles(double* data, size_t count) {
  if (!status_.ok()) return false;
  if (count > remaining() / sizeof(double)) {
    status_ =
        Status::Corruption("double array exceeds remaining section bytes");
    return false;
  }
  return ReadBytes(data, count * sizeof(double));
}

Status VerifyFramedSections(BinaryReader* in, int64_t* num_sections) {
  EDDE_RETURN_NOT_OK(in->status());
  int64_t sections = 0;
  while (in->remaining() > 0) {
    // Load() verifies the frame header against the bytes remaining and the
    // payload against its CRC; any tag is acceptable — the scan checks
    // integrity, not schema.
    SectionReader section;
    EDDE_RETURN_NOT_OK(section.Load(in, /*expected_tag=*/0));
    ++sections;
  }
  if (sections == 0) {
    return Status::Corruption("no framed sections found");
  }
  if (num_sections != nullptr) *num_sections = sections;
  return Status::OK();
}

}  // namespace edde
