#include "utils/logging.h"

#include <atomic>
#include <cstdio>

#include "utils/crash.h"

namespace edde {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

/// Applies EDDE_LOG_LEVEL once, before the first MinLogLevel() read, so an
/// operator can turn on debug logging without touching flags.
bool ApplyEnvLogLevel() {
  if (const char* env = std::getenv("EDDE_LOG_LEVEL");
      env != nullptr && env[0] != '\0') {
    LogLevel level;
    if (ParseLogLevel(env, &level)) {
      g_min_level.store(static_cast<int>(level));
    } else {
      std::fprintf(stderr,
                   "[WARN logging.cc] ignoring invalid EDDE_LOG_LEVEL=\"%s\" "
                   "(want debug|info|warning|error|fatal)\n",
                   env);
    }
  }
  return true;
}

}  // namespace

LogLevel MinLogLevel() {
  static const bool env_applied = ApplyEnvLogLevel();
  (void)env_applied;
  return static_cast<LogLevel>(g_min_level.load());
}

void SetMinLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level));
}

bool ParseLogLevel(const std::string& text, LogLevel* out) {
  if (text == "debug" || text == "0") {
    *out = LogLevel::kDebug;
  } else if (text == "info" || text == "1") {
    *out = LogLevel::kInfo;
  } else if (text == "warning" || text == "warn" || text == "2") {
    *out = LogLevel::kWarning;
  } else if (text == "error" || text == "3") {
    *out = LogLevel::kError;
  } else if (text == "fatal" || text == "4") {
    *out = LogLevel::kFatal;
  } else {
    return false;
  }
  return true;
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  const std::string message = stream_.str();
  // Every emitted record also lands in the crash flight-recorder ring, so
  // a crash report can show the log tail even when stderr was discarded.
  crash_internal::AppendLogRecord(message.c_str(), message.size());
  std::fputs(message.c_str(), stderr);
  std::fflush(stderr);
  if (level_ == LogLevel::kFatal) {
    // Flush the metrics/trace sinks and write the crash report while still
    // in normal (non-signal) context, then die with the usual abort.
    crash_internal::HandleFatalLogMessage();
    std::abort();
  }
}

}  // namespace internal
}  // namespace edde
