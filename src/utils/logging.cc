#include "utils/logging.h"

#include <atomic>
#include <cstdio>

namespace edde {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

}  // namespace

LogLevel MinLogLevel() { return static_cast<LogLevel>(g_min_level.load()); }

void SetMinLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
  std::fflush(stderr);
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace edde
