#ifndef EDDE_UTILS_DURABLE_IO_H_
#define EDDE_UTILS_DURABLE_IO_H_

#include <cstdint>
#include <string>

#include "utils/serialize.h"
#include "utils/status.h"

namespace edde {

/// Crash-consistent file IO (DESIGN.md §11).
///
/// Two layers:
///  1. Atomic commit — AtomicFileWriter / AtomicWriteFile stage content in a
///     sibling temp file, fsync it, rename() over the destination, and fsync
///     the parent directory. A reader (or a restarted process) observes
///     either the previous complete file or the new complete file, never a
///     prefix. Transient errors (EINTR/EAGAIN and failpoint-injected ones)
///     are retried with bounded exponential backoff.
///  2. Integrity framing — SectionWriter / SectionReader wrap BinaryWriter /
///     BinaryReader with [tag, version, size, payload, CRC32] sections so a
///     torn or bit-flipped file is detected on load *before* any payload is
///     parsed, turning corruption into a Status the caller can use to fall
///     back to an older checkpoint generation.
///
/// Every fallible step carries a failpoint site (utils/failpoint.h):
/// durable.write, durable.fsync, durable.rename, durable.dirsync.

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), chainable via
/// `crc` for multi-part data. Crc32(data, n) == Crc32(b, n-k, Crc32(a, k))
/// when data = a||b.
uint32_t Crc32(const void* data, size_t size, uint32_t crc = 0);

struct DurableIoOptions {
  int max_attempts = 4;  ///< per fallible op (write / fsync / rename)
  int backoff_ms = 5;    ///< base backoff; doubles per retry
};

/// The staging path AtomicFileWriter uses for `path`
/// ("<path>.tmp.<pid>" — pid-suffixed so concurrent processes writing the
/// same destination cannot stomp each other's staging file).
std::string TempPathFor(const std::string& path);

/// Writes `size` bytes to `path` with the full temp → fsync → rename →
/// dirsync sequence. The destination is untouched on failure (the staging
/// file is unlinked on a failed commit).
Status AtomicCommit(const std::string& path, const void* data, size_t size,
                    const DurableIoOptions& options = DurableIoOptions());

/// Convenience wrapper over AtomicCommit for string content.
Status AtomicWriteFile(const std::string& path, const std::string& contents,
                       const DurableIoOptions& options = DurableIoOptions());

/// Buffered atomic writer for callers that produce content incrementally.
/// Append() never touches the filesystem; Commit() performs one
/// AtomicCommit of the accumulated bytes. Abandoning the writer without
/// Commit() leaves no trace on disk.
class AtomicFileWriter {
 public:
  explicit AtomicFileWriter(std::string path,
                            DurableIoOptions options = DurableIoOptions());

  void Append(const void* data, size_t size);
  void Append(const std::string& chunk) { Append(chunk.data(), chunk.size()); }

  /// Commits the buffer to the destination. Idempotence is not provided:
  /// call exactly once.
  Status Commit();

  size_t size() const { return buffer_.size(); }

 private:
  std::string path_;
  DurableIoOptions options_;
  std::string buffer_;
};

/// Builds one integrity-framed section payload in memory. Append the frame
/// to a file with AppendTo(), or embed the raw payload in an enclosing
/// section via payload() (nested blobs re-enter through
/// SectionReader::InitFromPayload).
///
/// Frame layout (little-endian):
///   u32 tag | u32 version | u64 payload_bytes | payload | u32 crc32(payload)
class SectionWriter {
 public:
  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteI64(int64_t v);
  void WriteF32(float v);
  void WriteF64(double v);
  void WriteString(const std::string& s);
  void WriteFloats(const float* data, size_t count);
  void WriteDoubles(const double* data, size_t count);
  void WriteBytes(const void* data, size_t count);

  /// Appends the framed section (header + payload + CRC) to `out`.
  void AppendTo(BinaryWriter* out, uint32_t tag, uint32_t version) const;

  const std::string& payload() const { return payload_; }

 private:
  std::string payload_;
};

/// Reads one framed section and verifies its CRC before exposing any field.
/// On CRC mismatch, truncated payload, or a declared size exceeding the
/// bytes remaining in the file, Load() returns Corruption and the reader
/// stays empty — no partially-validated data is ever visible.
class SectionReader {
 public:
  /// Reads the next section frame from `in`. `expected_tag` guards against
  /// out-of-order sections; pass 0 to accept any tag.
  Status Load(BinaryReader* in, uint32_t expected_tag = 0);

  /// Adopts a raw payload extracted from an enclosing section (no frame, no
  /// CRC — the enclosing section already vouched for these bytes).
  void InitFromPayload(std::string payload);

  uint32_t tag() const { return tag_; }
  uint32_t version() const { return version_; }

  bool ReadU32(uint32_t* v);
  bool ReadU64(uint64_t* v);
  bool ReadI64(int64_t* v);
  bool ReadF32(float* v);
  bool ReadF64(double* v);
  bool ReadString(std::string* s);
  bool ReadFloats(float* data, size_t count);
  bool ReadDoubles(double* data, size_t count);
  /// Raw bytes, no length prefix (caller-framed arrays, e.g. fp16 blobs).
  bool ReadRaw(void* dst, size_t count);

  /// Bytes left in the payload. 0 when fully consumed.
  size_t remaining() const { return payload_.size() - offset_; }

  /// Consumes and returns all unread payload bytes (nested blobs).
  std::string TakeRemaining();

  const Status& status() const { return status_; }

 private:
  bool ReadBytes(void* dst, size_t count);

  uint32_t tag_ = 0;
  uint32_t version_ = 0;
  std::string payload_;
  size_t offset_ = 0;
  Status status_;
};

/// Scans CRC-framed sections from the reader's cursor to end of file,
/// verifying every frame (header sanity + payload CRC) without
/// interpreting any payload. The cheap artifact integrity pre-check shared
/// by consumers that must reject a torn or bit-flipped file *before*
/// committing to the expensive parse — e.g. the serving layer validating a
/// candidate ensemble ahead of a hot swap. Corruption on the first bad
/// frame; `*num_sections` (optional) reports how many frames verified.
Status VerifyFramedSections(BinaryReader* in, int64_t* num_sections = nullptr);

}  // namespace edde

#endif  // EDDE_UTILS_DURABLE_IO_H_
