#ifndef EDDE_UTILS_METRICS_H_
#define EDDE_UTILS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "utils/status.h"

namespace edde {

/// Process-wide telemetry registry.
///
/// Three aggregate instrument kinds — Counter, Gauge, Histogram — plus an
/// ordered event log of pre-serialized JSON records (per-epoch training
/// stats, per-round EDDE stats). Aggregates are always live and are safe to
/// update concurrently from ParallelFor workers: counters and histograms
/// shard their state across cache-line-aligned atomic cells, so concurrent
/// increments never lock and never lose updates. Reads sum the shards and
/// are exact once the writers have joined (ParallelFor regions establish
/// the necessary happens-before edge when they return).
///
/// Event records are buffered only while a JSONL sink is configured —
/// either via the EDDE_METRICS_PATH environment variable (read once, at
/// first registry use; the file is written automatically at process exit)
/// or programmatically / via the shared --metrics_path flag with
/// SetSinkPath. With no sink configured, events_enabled() is false and the
/// emitters skip record construction entirely, so telemetry stays dark on
/// the hot path. Telemetry never draws from any RNG: results are
/// bit-identical with the sink on or off (see parallel_determinism_test).

namespace telemetry_internal {

/// Shard fan-out for counters/histograms. More shards = less contention,
/// more memory; 16 covers the thread counts the pool runs at.
constexpr int kShards = 16;

/// One cache line per cell so two shards never false-share.
struct alignas(64) Cell {
  std::atomic<int64_t> value{0};
};

/// Stable per-thread shard index in [0, kShards).
size_t ShardIndex();

/// value += delta for atomic<double> (CAS loop; relaxed order — exactness
/// across threads comes from the caller's join, not the metric itself).
void AtomicAddDouble(std::atomic<double>* target, double delta);
void AtomicMinDouble(std::atomic<double>* target, double value);
void AtomicMaxDouble(std::atomic<double>* target, double value);

}  // namespace telemetry_internal

/// Monotonic event count, sharded for contended increments.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(int64_t delta = 1) {
    shards_[telemetry_internal::ShardIndex()].value.fetch_add(
        delta, std::memory_order_relaxed);
  }

  /// Sum over shards; exact once concurrent writers have joined.
  int64_t Value() const;

  /// Zeroes the counter in place. Not safe concurrently with writers.
  void Reset();

 private:
  telemetry_internal::Cell shards_[telemetry_internal::kShards];
};

/// Last-write-wins scalar (pool size, queue depth, config echoes).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    telemetry_internal::AtomicAddDouble(&value_, delta);
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// One consistent read of a Histogram: the exact aggregates plus the
/// quantile estimates and per-bucket counts, all derived from a single
/// BucketCounts() pass so every consumer (PrintSummary, the JSONL dump,
/// the Prometheus exposition, /statusz) reports the same numbers.
struct HistogramSnapshot {
  int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;   ///< 0 when empty
  double max = 0.0;   ///< 0 when empty
  double mean = 0.0;  ///< 0 when empty
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  /// (inclusive upper bound, samples in bucket) for every *non-empty*
  /// bucket, bound ascending; the unbounded tail carries +inf.
  std::vector<std::pair<double, int64_t>> buckets;
};

/// Distribution of non-negative samples (wall times, batch sizes): exact
/// count/sum/min/max plus power-of-two buckets from 1µs for approximate
/// percentiles. Sharded like Counter; Record never locks.
class Histogram {
 public:
  /// Bucket i holds samples <= kBucketBase * 2^i seconds; the last bucket
  /// is unbounded. 1µs … ~17min with 31 finite bounds.
  static constexpr int kNumBuckets = 32;
  static constexpr double kBucketBase = 1e-6;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Records one sample. Negative / non-finite values clamp to 0.
  void Record(double value);

  int64_t Count() const;
  double Sum() const;
  /// 0 when empty.
  double Min() const;
  double Max() const;
  /// Sum / Count; 0 when empty.
  double Mean() const;
  /// Upper bound of the bucket holding quantile `q` in [0, 1] (an
  /// overestimate of at most 2x); exact Max() for the unbounded bucket.
  double ApproxQuantile(double q) const;
  /// Aggregated per-bucket counts (size kNumBuckets).
  std::vector<int64_t> BucketCounts() const;
  /// Inclusive upper bound of bucket `i` (+inf for the last).
  static double BucketUpperBound(int i);

  /// One consistent read of the whole distribution (see HistogramSnapshot).
  /// Lock-free like every other reader; exact once writers have joined,
  /// and internally consistent against concurrent writers (quantiles and
  /// bucket list come from one BucketCounts pass).
  HistogramSnapshot Snapshot() const;

  /// Zeroes the histogram in place. Not safe concurrently with writers.
  void Reset();

 private:
  struct alignas(64) Shard {
    std::atomic<int64_t> count{0};
    // min/max start at ±inf so concurrent first records race safely
    // through the CAS loops; readers skip shards with count == 0.
    std::atomic<double> min{std::numeric_limits<double>::infinity()};
    std::atomic<double> max{-std::numeric_limits<double>::infinity()};
    std::atomic<double> sum{0.0};
    std::atomic<int64_t> buckets[kNumBuckets] = {};
  };
  Shard shards_[telemetry_internal::kShards];
};

/// Incremental builder for one flat JSON object (one JSONL line). Handles
/// string escaping and non-finite doubles (emitted as null, which JSON
/// requires).
class JsonBuilder {
 public:
  JsonBuilder& Add(const std::string& key, const std::string& value);
  JsonBuilder& Add(const std::string& key, const char* value);
  JsonBuilder& Add(const std::string& key, double value);
  JsonBuilder& Add(const std::string& key, int64_t value);
  JsonBuilder& Add(const std::string& key, int value);
  JsonBuilder& Add(const std::string& key, bool value);
  /// Splices `raw` in verbatim (arrays / nested objects).
  JsonBuilder& AddRaw(const std::string& key, const std::string& raw);

  /// The finished "{...}" object.
  std::string Build() const;

  /// JSON string escaping helper (quotes, backslashes, control chars).
  static std::string Escape(const std::string& s);

 private:
  void Key(const std::string& key);
  std::string body_;
};

/// Point-in-time copy of every registered instrument, ordered by name.
/// Taking a snapshot locks only the registry's name→instrument map (the
/// same mutex GetCounter takes on a cold lookup) — never anything on the
/// instrument write paths, which stay lock-free; scraping cannot stall a
/// Record() or Increment().
struct MetricsSnapshot {
  std::vector<std::pair<std::string, int64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};

/// Renders `snapshot` in the Prometheus text exposition format
/// (version 0.0.4). Instrument names are sanitized to the metric charset
/// ([a-zA-Z0-9_:], everything else becomes '_') and prefixed "edde_".
/// Counters/gauges map to their native types; each histogram becomes a
/// `# TYPE ... histogram` family (cumulative `_bucket{le="..."}` plus
/// `_sum`/`_count`) and, alongside it, gauge families `<name>_min`,
/// `<name>_max` and `<name>_quantile{quantile="0.5|0.95|0.99"}` carrying
/// the exact extrema and the bucket-derived quantile estimates. All values
/// are finite (non-finite gauges render as 0), so the output never carries
/// a NaN.
std::string RenderPrometheus(const MetricsSnapshot& snapshot);

class MetricsRegistry {
 public:
  /// The process-wide registry. First call reads EDDE_METRICS_PATH and
  /// registers an at-exit JSONL dump when it is set.
  static MetricsRegistry& Global();

  /// Named instrument lookup; creates on first use. Returned pointers are
  /// stable for the process lifetime — hot paths should cache them.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Names of every registered histogram, sorted. Resolve each through
  /// GetHistogram; used by the bench harness to export per-region timing
  /// summaries.
  std::vector<std::string> HistogramNames() const;

  /// Copies the live registry (see MetricsSnapshot for the locking
  /// contract). The scrape path: RenderPrometheusText() == Snapshot() +
  /// RenderPrometheus().
  MetricsSnapshot Snapshot() const;
  std::string RenderPrometheusText() const;

  /// True when a JSONL sink is configured; emitters gate record
  /// construction on this so telemetry is free when disabled.
  bool events_enabled() const {
    return events_enabled_.load(std::memory_order_relaxed);
  }

  /// Appends one pre-serialized JSON object (see JsonBuilder) to the event
  /// log. No-op when events are disabled; drops (and counts) records past
  /// the buffer cap instead of growing without bound.
  void EmitEvent(const std::string& json_object);

  /// Configures ("" clears) the JSONL sink path and toggles events.
  void SetSinkPath(const std::string& path);
  std::string sink_path() const;

  /// Writes the full telemetry state as JSONL: buffered events in emission
  /// order, then counters, gauges and histograms sorted by name.
  Status DumpJsonl(const std::string& path) const;

  /// DumpJsonl to the configured sink; OK no-op when no sink is set.
  Status DumpToSink() const;

  /// Renders counters/gauges plus a per-region timing table (histograms)
  /// through utils/table. Used by the bench harnesses.
  void PrintSummary(std::ostream& os) const;

  /// Zeroes every instrument in place and drops buffered events. Cached
  /// instrument pointers stay valid (instruments are never destroyed).
  /// Test support; not safe concurrently with writers.
  void Reset();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;

  mutable std::mutex events_mu_;
  std::vector<std::string> events_;
  int64_t events_dropped_ = 0;
  std::string sink_path_;
  std::atomic<bool> events_enabled_{false};
};

}  // namespace edde

#endif  // EDDE_UTILS_METRICS_H_
