#ifndef EDDE_UTILS_FLAGS_H_
#define EDDE_UTILS_FLAGS_H_

#include <map>
#include <string>
#include <vector>

#include "utils/status.h"

namespace edde {

/// Minimal `--key=value` command-line parser for example and bench binaries.
///
///   FlagParser flags;
///   flags.Define("scale", "tiny", "workload scale: tiny|small|paper");
///   flags.Define("seed", "42", "RNG seed");
///   EDDE_CHECK(flags.Parse(argc, argv).ok());
///   int seed = flags.GetInt("seed");
class FlagParser {
 public:
  /// Registers a flag with its default value and help text.
  void Define(const std::string& name, const std::string& default_value,
              const std::string& help);

  /// Parses argv; returns InvalidArgument for unknown or malformed flags.
  /// Recognizes `--name=value`, `--name value` and `--help`.
  Status Parse(int argc, char** argv);

  /// True when `--help` was passed; PrintHelp() and exit in that case.
  bool help_requested() const { return help_requested_; }

  /// Writes the registered flags with defaults and help text to stdout.
  void PrintHelp(const std::string& program) const;

  std::string GetString(const std::string& name) const;
  int GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  /// True when `name` was registered with Define().
  bool Has(const std::string& name) const;

  /// Every registered flag's current value, sorted by name. Used to record
  /// the parsed configuration into the RunManifest.
  std::vector<std::pair<std::string, std::string>> Values() const;

 private:
  struct FlagInfo {
    std::string value;
    std::string default_value;
    std::string help;
  };
  std::map<std::string, FlagInfo> flags_;
  bool help_requested_ = false;
};

/// Registers the cross-cutting flags every example/bench binary shares:
///   --metrics_path  telemetry JSONL sink (same effect as EDDE_METRICS_PATH)
///   --trace_path    Chrome trace_event timeline (same as EDDE_TRACE_PATH)
///   --log_level     minimum emitted log level (same as EDDE_LOG_LEVEL)
void DefineCommonFlags(FlagParser* parser);

/// Applies the flags registered by DefineCommonFlags after Parse():
/// configures the MetricsRegistry JSONL sink / trace sink / log level when
/// the corresponding flag is set (flags win over environment variables),
/// records every parsed flag value (plus --seed when the binary defines
/// one) into the RunManifest, and installs the crash flight recorder.
void ApplyCommonFlags(const FlagParser& parser);

}  // namespace edde

#endif  // EDDE_UTILS_FLAGS_H_
