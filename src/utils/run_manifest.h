#ifndef EDDE_UTILS_RUN_MANIFEST_H_
#define EDDE_UTILS_RUN_MANIFEST_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace edde {

/// Run provenance, captured once per process and embedded in every
/// machine-readable artifact this process writes: the first record of the
/// metrics JSONL stream, the trace file's `otherData`, every
/// `BENCH_<name>.json`, and the crash flight-recorder report. The goal is
/// that any artifact found on disk answers "which binary, which seed, which
/// flags, which data, how many threads, when" without the shell history
/// that produced it.
///
/// Compile-time fields (compiler, build type, start time, pid) fill in at
/// first access; runtime fields (program, seed, flag values, dataset
/// fingerprints, pool size) are pushed by their owners — ApplyCommonFlags,
/// the bench harness, and the thread pool — via the setters below. All
/// setters are thread-safe and keep a pre-serialized JSON snapshot current
/// so the crash handler can emit the manifest without allocating.
struct RunManifest {
  std::string program;        ///< argv[0] basename (benches/examples).
  std::string compiler;       ///< __VERSION__.
  std::string build_type;     ///< optimized / debug, sanitizer tags.
  std::string start_time_utc; ///< wall-clock start, ISO-8601 UTC.
  int64_t start_unix_ms = 0;
  int pid = 0;
  uint64_t seed = 0;
  int num_threads = 0;        ///< resolved pool size; 0 until pool creation.
  std::string num_threads_env;  ///< raw EDDE_NUM_THREADS value ("" if unset).
  /// Parsed --flag=value pairs in definition order.
  std::vector<std::pair<std::string, std::string>> flags;
  /// name -> FNV-1a fingerprint of the dataset bytes, per workload.
  std::vector<std::pair<std::string, uint64_t>> datasets;
};

/// Snapshot of the current manifest (copies under the manifest lock).
RunManifest GetRunManifest();

void ManifestSetProgram(const std::string& program);
void ManifestSetSeed(uint64_t seed);
void ManifestSetNumThreads(int num_threads);
void ManifestSetFlag(const std::string& name, const std::string& value);
void ManifestAddDataset(const std::string& name, uint64_t fingerprint);

/// The manifest as one JSON object (JsonBuilder format).
std::string RunManifestJson();

/// NUL-terminated pre-serialized manifest JSON, refreshed on every setter
/// call. Safe to read from a signal handler: the buffer is static, and a
/// torn read during a concurrent update degrades to slightly stale
/// provenance, never to a fault.
const char* RunManifestJsonForSignal();

/// FNV-1a over `size` bytes; chainable via `basis` for multi-part data.
uint64_t FingerprintBytes(const void* data, size_t size,
                          uint64_t basis = 1469598103934665603ull);

}  // namespace edde

#endif  // EDDE_UTILS_RUN_MANIFEST_H_
