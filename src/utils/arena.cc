#include "utils/arena.h"

#include <atomic>
#include <cstdlib>
#include <new>

#include "utils/logging.h"
#include "utils/metrics.h"

namespace edde {

namespace {

constexpr size_t kAlignment = 64;
constexpr size_t kMinSlabBytes = size_t{1} << 20;  // 1 MiB

size_t AlignUp(size_t n) { return (n + kAlignment - 1) & ~(kAlignment - 1); }

// Reserved-slab bytes across every live arena; kept with plain atomics so
// TotalArenaReservedBytes never has to walk other threads' arenas.
std::atomic<size_t> g_reserved_bytes{0};

// thread_local so ParallelFor workers get disjoint scratch for free. The
// arena is destroyed (and its bytes unaccounted) when the thread exits.
thread_local ScratchArena t_arena;

// Depth of nested ArenaScopes on this thread; depth 0 -> 1 marks the
// top-level scope whose exit may consolidate slabs.
thread_local int t_scope_depth = 0;

Gauge* ReservedGauge() {
  static Gauge* const gauge =
      MetricsRegistry::Global().GetGauge("arena.reserved_bytes");
  return gauge;
}

}  // namespace

ScratchArena& ScratchArena::ForCurrentThread() { return t_arena; }

ScratchArena::~ScratchArena() {
  for (Slab& slab : slabs_) {
    g_reserved_bytes.fetch_sub(slab.size, std::memory_order_relaxed);
    ::operator delete[](slab.base, std::align_val_t{kAlignment});
  }
}

size_t ScratchArena::capacity() const {
  size_t total = 0;
  for (const Slab& slab : slabs_) total += slab.size;
  return total;
}

void* ScratchArena::Alloc(size_t bytes) {
  bytes = AlignUp(bytes == 0 ? 1 : bytes);
  if (active_ < slabs_.size()) {
    Slab& slab = slabs_[active_];
    if (slab.size - slab.used >= bytes) {
      char* p = slab.base + slab.used;
      slab.used += bytes;
      in_use_ += bytes;
      if (in_use_ > high_water_) high_water_ = in_use_;
      return p;
    }
    // Try the next chained slab (present after a Restore that rewound past
    // a growth point).
    if (active_ + 1 < slabs_.size() && slabs_[active_ + 1].size >= bytes) {
      ++active_;
      slabs_[active_].used = bytes;
      in_use_ += bytes;
      if (in_use_ > high_water_) high_water_ = in_use_;
      return slabs_[active_].base;
    }
  }
  // Grow: chain a new slab without moving live allocations. Doubling keeps
  // the number of growth events logarithmic in the peak demand.
  size_t slab_bytes = kMinSlabBytes;
  const size_t cap = capacity();
  if (cap * 2 > slab_bytes) slab_bytes = cap * 2;
  if (bytes > slab_bytes) slab_bytes = AlignUp(bytes);
  Slab slab;
  slab.base = static_cast<char*>(
      ::operator new[](slab_bytes, std::align_val_t{kAlignment}));
  slab.size = slab_bytes;
  slab.used = bytes;
  // Drop any unused chained slabs beyond the active one; they are smaller
  // than the new slab by construction.
  while (slabs_.size() > (slabs_.empty() ? 0 : active_ + 1)) {
    g_reserved_bytes.fetch_sub(slabs_.back().size, std::memory_order_relaxed);
    ::operator delete[](slabs_.back().base, std::align_val_t{kAlignment});
    slabs_.pop_back();
  }
  slabs_.push_back(slab);
  active_ = slabs_.size() - 1;
  ++slab_allocs_;
  g_reserved_bytes.fetch_add(slab_bytes, std::memory_order_relaxed);
  ReservedGauge()->Set(
      static_cast<double>(g_reserved_bytes.load(std::memory_order_relaxed)));
  in_use_ += bytes;
  if (in_use_ > high_water_) high_water_ = in_use_;
  return slab.base;
}

ScratchArena::Mark ScratchArena::Save() const {
  Mark mark;
  mark.slab_index = active_;
  mark.slab_used = active_ < slabs_.size() ? slabs_[active_].used : 0;
  mark.in_use = in_use_;
  return mark;
}

void ScratchArena::Restore(const Mark& mark) {
  for (size_t i = mark.slab_index + 1; i < slabs_.size(); ++i) {
    slabs_[i].used = 0;
  }
  active_ = mark.slab_index;
  if (active_ < slabs_.size()) slabs_[active_].used = mark.slab_used;
  in_use_ = mark.in_use;
}

void ScratchArena::Consolidate() {
  EDDE_CHECK_EQ(static_cast<int64_t>(in_use_), 0)
      << "arena consolidation with live scratch";
  if (slabs_.size() <= 1) return;
  const size_t want = AlignUp(high_water_ > kMinSlabBytes ? high_water_
                                                          : kMinSlabBytes);
  for (Slab& slab : slabs_) {
    g_reserved_bytes.fetch_sub(slab.size, std::memory_order_relaxed);
    ::operator delete[](slab.base, std::align_val_t{kAlignment});
  }
  slabs_.clear();
  Slab slab;
  slab.base = static_cast<char*>(
      ::operator new[](want, std::align_val_t{kAlignment}));
  slab.size = want;
  slab.used = 0;
  slabs_.push_back(slab);
  active_ = 0;
  ++slab_allocs_;
  g_reserved_bytes.fetch_add(want, std::memory_order_relaxed);
  ReservedGauge()->Set(
      static_cast<double>(g_reserved_bytes.load(std::memory_order_relaxed)));
}

ArenaScope::ArenaScope()
    : arena_(&ScratchArena::ForCurrentThread()),
      mark_(arena_->Save()),
      top_level_(t_scope_depth == 0) {
  ++t_scope_depth;
}

ArenaScope::~ArenaScope() {
  arena_->Restore(mark_);
  --t_scope_depth;
  if (top_level_ && arena_->slabs_.size() > 1 && arena_->in_use_ == 0) {
    arena_->Consolidate();
  }
}

size_t TotalArenaReservedBytes() {
  return g_reserved_bytes.load(std::memory_order_relaxed);
}

}  // namespace edde
