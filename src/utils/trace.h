#ifndef EDDE_UTILS_TRACE_H_
#define EDDE_UTILS_TRACE_H_

#include <chrono>

#include "utils/metrics.h"

namespace edde {

/// Resolves the per-region timing histogram for `label` ("time/<label>" in
/// MetricsRegistry). Hot paths cache the returned pointer (it is stable for
/// the process lifetime) instead of constructing a TraceScope per
/// iteration.
Histogram* TraceHistogram(const char* label);

/// RAII wall-time region timer. On destruction the elapsed seconds are
/// recorded into the label's "time/<label>" histogram, so repeated entries
/// of the same region aggregate into count / total / min / max /
/// percentiles. Safe to nest and to use concurrently from ParallelFor
/// workers; never touches any RNG, so traced code stays bit-deterministic.
///
///   void TrainMember(...) {
///     TraceScope trace("bagging/member");
///     ...
///   }
class TraceScope {
 public:
  explicit TraceScope(const char* label)
      : histogram_(TraceHistogram(label)),
        start_(std::chrono::steady_clock::now()) {}

  /// Pre-resolved histogram variant for hot regions.
  explicit TraceScope(Histogram* histogram)
      : histogram_(histogram), start_(std::chrono::steady_clock::now()) {}

  ~TraceScope() {
    histogram_->Record(std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start_)
                           .count());
  }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace edde

#endif  // EDDE_UTILS_TRACE_H_
