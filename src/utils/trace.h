#ifndef EDDE_UTILS_TRACE_H_
#define EDDE_UTILS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>

#include "utils/metrics.h"

namespace edde {

/// Monotonic wall-clock stopwatch (the one timing primitive in the repo;
/// TraceScope composes it with the telemetry instruments below).
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Resets the stopwatch to now.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction / last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction / last Reset().
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Resolves the per-region timing histogram for `label` ("time/<label>" in
/// MetricsRegistry). Hot paths cache the returned pointer (it is stable for
/// the process lifetime) instead of constructing a TraceScope per
/// iteration.
Histogram* TraceHistogram(const char* label);

/// A named trace region: the histogram plus the stable label string used
/// for timeline spans. Pointers are stable for the process lifetime, so
/// hot paths cache them like TraceHistogram results.
struct TraceRegion {
  Histogram* histogram;
  const char* label;
};

/// Region lookup; creates on first use. `label` contents are copied — the
/// returned region's label points at registry-owned storage.
const TraceRegion* GetTraceRegion(const char* label);

// ---------------------------------------------------------------------------
// Span timeline
// ---------------------------------------------------------------------------
//
// When a trace path is configured (--trace_path flag or EDDE_TRACE_PATH env
// var, mirroring the metrics sink), every TraceScope additionally appends a
// begin/end span record into a lock-free per-thread ring buffer, and
// DumpTrace() exports the rings as Chrome/Perfetto `trace_event` JSON — one
// track per thread (pool workers register their own names), counter tracks
// from TraceCounter samples, and the RunManifest in `otherData`. With no
// path configured the per-scope cost is one relaxed atomic load and
// training results stay bit-identical (tracing never touches any RNG).
//
// Rings keep the most recent kTraceRingCapacity spans per thread; overflow
// drops the oldest records and the export reports how many were dropped.

/// True when a trace sink is configured. One relaxed load — callers on hot
/// paths may gate extra work on it.
bool TraceEnabled();

/// Configures ("" clears) the trace output path. The file is written by
/// DumpTrace(), which runs automatically at process exit and on the fatal
/// log path.
void SetTracePath(const std::string& path);
std::string trace_path();

/// Appends one sample to counter track `label` at the current trace time.
/// No-op when tracing is off. `label` must be a string literal (stored by
/// pointer).
void TraceCounter(const char* label, double value);

/// Names the calling thread's track in the exported timeline ("main",
/// "pool/worker 3", ...). Safe to call before tracing is enabled.
void SetTraceThreadName(const char* name);

// ---------------------------------------------------------------------------
// Request tracing
// ---------------------------------------------------------------------------
//
// A *trace id* is a 64-bit tag (0 = "none") that follows one request across
// threads and spans: the serving layer parses it off the wire (or mints
// one), installs it with ScopedTraceId around the work done on the
// request's behalf, and every TraceScope that closes while an id is
// installed carries it into the exported timeline as
// `"args":{"trace_id":"<16 hex digits>"}`. Grepping the Perfetto JSON for
// one id yields the request's queue-wait, batch and per-member spans.

/// 16 lowercase hex digits ("00f3a9..."); the wire and export spelling.
std::string FormatTraceId(uint64_t id);

/// Parses a FormatTraceId spelling (1–16 hex digits, case-insensitive).
/// Returns 0 on empty or invalid input — indistinguishable from "no id" by
/// design; callers that must reject garbage validate the string first with
/// IsValidTraceId.
uint64_t ParseTraceId(const std::string& s);
bool IsValidTraceId(const std::string& s);

/// Mints a process-unique nonzero id. Never touches any tensor RNG —
/// predictions stay bit-identical whether ids are minted or not.
uint64_t MintTraceId();

/// The calling thread's installed trace id (0 when none).
uint64_t CurrentTraceId();

/// RAII: installs `id` as the calling thread's trace id, restoring the
/// previous one on destruction. Installing 0 is a no-op scope.
class ScopedTraceId {
 public:
  explicit ScopedTraceId(uint64_t id);
  ~ScopedTraceId();
  ScopedTraceId(const ScopedTraceId&) = delete;
  ScopedTraceId& operator=(const ScopedTraceId&) = delete;

 private:
  uint64_t prev_;
};

/// Records a span whose endpoints were measured elsewhere (e.g. a request's
/// queue wait: arrival happened on the reader thread, the batch cut on the
/// worker). The duration always lands in the region's timing histogram;
/// when tracing is on, the span is appended to the *calling* thread's track
/// tagged with `trace_id` (not the ambient ScopedTraceId). `end` before
/// `begin` clamps to a zero-length span.
void TraceCompleteSpan(const TraceRegion* region,
                       std::chrono::steady_clock::time_point begin,
                       std::chrono::steady_clock::time_point end,
                       uint64_t trace_id);

/// Writes the Chrome trace JSON to the configured path; OK no-op when no
/// path is set.
Status DumpTrace();

/// Writes the Chrome trace JSON to an explicit path.
Status DumpTraceTo(const std::string& path);

/// Drops all buffered span records and thread registrations' contents
/// (thread slots stay registered). Test support; not safe concurrently
/// with tracing writers.
void ResetTraceBuffers();

namespace trace_internal {

/// Writes a human-readable listing of every thread's currently open spans
/// into `buf` (at most `cap` bytes, NUL-terminated). Async-signal-tolerant:
/// touches only pre-allocated state. Returns the number of bytes written
/// (excluding the NUL).
size_t SnapshotOpenSpans(char* buf, size_t cap);

}  // namespace trace_internal

/// RAII region timer. On destruction the elapsed seconds are recorded into
/// the label's "time/<label>" histogram, so repeated entries of the same
/// region aggregate into count / total / min / max / percentiles; when a
/// trace sink is configured the scope additionally becomes one span on the
/// calling thread's timeline track. Safe to nest and to use concurrently
/// from ParallelFor workers; never touches any RNG, so traced code stays
/// bit-deterministic.
///
///   void TrainMember(...) {
///     TraceScope trace("bagging/member");
///     ...
///   }
class TraceScope {
 public:
  explicit TraceScope(const char* label) : TraceScope(GetTraceRegion(label)) {}

  /// Pre-resolved region variant for hot paths.
  explicit TraceScope(const TraceRegion* region)
      : region_(region), start_(std::chrono::steady_clock::now()) {
    if (TraceEnabled()) span_depth_ = BeginSpan(region_->label);
  }

  ~TraceScope() {
    region_->histogram->Record(std::chrono::duration<double>(
                                   std::chrono::steady_clock::now() - start_)
                                   .count());
    if (span_depth_ >= 0) EndSpan(span_depth_);
  }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  /// Pushes an open-span entry on the calling thread; returns its stack
  /// depth, or -1 when the span could not be recorded (stack full).
  static int BeginSpan(const char* label);
  /// Pops the entry at `depth` and appends the completed span record.
  static void EndSpan(int depth);

  const TraceRegion* region_;
  std::chrono::steady_clock::time_point start_;
  int span_depth_ = -1;
};

}  // namespace edde

#endif  // EDDE_UTILS_TRACE_H_
