#include "utils/failpoint.h"

#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "utils/logging.h"
#include "utils/run_manifest.h"

namespace edde {
namespace failpoint {

namespace internal {
std::atomic<bool> g_armed{false};
}  // namespace internal

namespace {

enum class Action { kError, kCrash, kShortWrite, kDelay };

struct SiteRule {
  Action action = Action::kError;
  // error: number of hits that fail (-1 = all). crash: which hit crashes
  // (1-based). short_write: bytes dropped. delay: milliseconds.
  long long param = -1;
  long long hits = 0;  // how many times this site has fired
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, SiteRule> rules;
  std::string spec;
};

Registry& registry() {
  static Registry* r = new Registry();
  return *r;
}

bool ParseRule(const std::string& site, const std::string& rhs, SiteRule* out) {
  std::string action = rhs;
  std::string param;
  size_t colon = rhs.find(':');
  if (colon != std::string::npos) {
    action = rhs.substr(0, colon);
    param = rhs.substr(colon + 1);
  }
  long long value = -1;
  if (!param.empty()) {
    char* end = nullptr;
    value = std::strtoll(param.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || value < 0) return false;
  }
  if (action == "error") {
    out->action = Action::kError;
    out->param = param.empty() ? -1 : value;
  } else if (action == "crash") {
    out->action = Action::kCrash;
    out->param = param.empty() ? 1 : value;
    if (out->param < 1) return false;
  } else if (action == "short_write") {
    out->action = Action::kShortWrite;
    out->param = param.empty() ? 16 : value;
  } else if (action == "delay") {
    out->action = Action::kDelay;
    if (param.empty()) return false;  // delay needs an explicit duration
    out->param = value;
  } else {
    return false;
  }
  (void)site;
  return true;
}

}  // namespace

Status SetSpec(const std::string& spec) {
  if (spec.empty()) {
    Clear();
    return Status::OK();
  }
  std::unordered_map<std::string, SiteRule> rules;
  size_t start = 0;
  while (start <= spec.size()) {
    size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    std::string entry = spec.substr(start, comma - start);
    start = comma + 1;
    if (entry.empty()) continue;
    size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= entry.size()) {
      return Status::InvalidArgument("failpoint spec entry '" + entry +
                                     "' is not site=action[:param]");
    }
    std::string site = entry.substr(0, eq);
    SiteRule rule;
    if (!ParseRule(site, entry.substr(eq + 1), &rule)) {
      return Status::InvalidArgument("failpoint spec entry '" + entry +
                                     "' has an unknown action or bad param");
    }
    rules[site] = rule;
  }
  Registry& r = registry();
  {
    std::lock_guard<std::mutex> lock(r.mu);
    r.rules = std::move(rules);
    r.spec = spec;
  }
  internal::g_armed.store(true, std::memory_order_relaxed);
  ManifestSetFlag("failpoints", spec);
  EDDE_LOG(WARNING) << "failpoints armed: " << spec;
  return Status::OK();
}

void Clear() {
  Registry& r = registry();
  internal::g_armed.store(false, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(r.mu);
  r.rules.clear();
  r.spec.clear();
}

void InitFromEnv() {
  const char* env = std::getenv("EDDE_FAILPOINTS");
  if (env == nullptr || env[0] == '\0') return;
  Status s = SetSpec(env);
  if (!s.ok()) {
    EDDE_LOG(ERROR) << "ignoring EDDE_FAILPOINTS: " << s.ToString();
  }
}

bool AnyActive() {
  return internal::g_armed.load(std::memory_order_relaxed);
}

std::string CurrentSpec() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return r.spec;
}

Status Hit(const char* site) {
  Registry& r = registry();
  Action action;
  long long param;
  long long hit_index;
  {
    std::lock_guard<std::mutex> lock(r.mu);
    auto it = r.rules.find(site);
    if (it == r.rules.end()) return Status::OK();
    it->second.hits += 1;
    action = it->second.action;
    param = it->second.param;
    hit_index = it->second.hits;
  }
  switch (action) {
    case Action::kError:
      if (param < 0 || hit_index <= param) {
        return Status::IOError(std::string("injected failpoint error at ") +
                               site);
      }
      return Status::OK();
    case Action::kCrash:
      if (hit_index >= param) {
        // Simulated power loss: no destructors, no stream flushes, no atexit.
        _exit(kCrashExitCode);
      }
      return Status::OK();
    case Action::kShortWrite:
      // Consulted by the durable writer via ShortWriteBytes; hitting the
      // site directly is a no-op.
      return Status::OK();
    case Action::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(param));
      return Status::OK();
  }
  return Status::OK();
}

size_t ShortWriteBytes(const char* site) {
  if (!internal::g_armed.load(std::memory_order_relaxed)) return 0;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.rules.find(site);
  if (it == r.rules.end() || it->second.action != Action::kShortWrite) {
    return 0;
  }
  return static_cast<size_t>(it->second.param);
}

}  // namespace failpoint
}  // namespace edde
