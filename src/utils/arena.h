#ifndef EDDE_UTILS_ARENA_H_
#define EDDE_UTILS_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace edde {

/// Per-thread bump-pointer scratch memory for kernel workspaces.
///
/// The tensor kernels (GEMM packing panels, im2col columns, per-sample conv
/// scratch) need short-lived buffers on every call, and before the arena
/// they allocated fresh Tensors inside ParallelFor workers — per-batch
/// malloc traffic on the training hot path. A ScratchArena instead hands
/// out 64-byte-aligned slices of a thread-local slab: allocation is a
/// pointer bump, release is restoring an offset, and the slab itself is
/// retained at its high-water mark, so a steady-state training loop
/// performs zero heap allocations for kernel scratch.
///
/// Lifetime rules (see DESIGN.md §10):
///  - Scratch is only valid while the ArenaScope that covers its
///    allocation is alive. Never store arena pointers in objects that
///    outlive the kernel call.
///  - Each thread owns its arena (thread_local), so ParallelFor workers
///    never share scratch and need no synchronization. A worker chunk that
///    needs scratch opens its own ArenaScope; nesting is free.
///  - Growth never moves live allocations: when the current slab is
///    exhausted a new one is chained, and the next top-level ArenaScope
///    exit consolidates every chained slab into one slab sized at the
///    high-water mark ("allocate twice, never again").
class ScratchArena {
 public:
  ScratchArena() = default;
  ~ScratchArena();
  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  /// The calling thread's arena, created on first use.
  static ScratchArena& ForCurrentThread();

  /// Returns `bytes` of 64-byte-aligned scratch. Valid until the enclosing
  /// ArenaScope closes.
  void* Alloc(size_t bytes);

  /// Typed helper: `count` floats of aligned scratch.
  float* AllocFloats(int64_t count) {
    return static_cast<float*>(Alloc(static_cast<size_t>(count) *
                                     sizeof(float)));
  }

  /// Bytes currently handed out (across all chained slabs).
  size_t bytes_in_use() const { return in_use_; }

  /// Largest bytes_in_use observed over the arena's lifetime.
  size_t high_water() const { return high_water_; }

  /// Total bytes of slab capacity currently reserved.
  size_t capacity() const;

  /// Number of heap (slab) allocations this arena has performed. A
  /// steady-state loop re-running the same kernels must not move this.
  int64_t slab_allocs() const { return slab_allocs_; }

 private:
  friend class ArenaScope;

  struct Slab {
    char* base = nullptr;
    size_t size = 0;
    size_t used = 0;
  };

  struct Mark {
    size_t slab_index = 0;
    size_t slab_used = 0;
    size_t in_use = 0;
  };

  Mark Save() const;
  void Restore(const Mark& mark);
  /// Replaces all chained slabs with a single slab >= high_water_. Only
  /// called when no scratch is live (top-level scope exit).
  void Consolidate();

  std::vector<Slab> slabs_;
  size_t active_ = 0;  ///< index of the slab currently bump-allocating
  size_t in_use_ = 0;
  size_t high_water_ = 0;
  int64_t slab_allocs_ = 0;
};

/// RAII scratch region on the current thread's arena: every Alloc made
/// while the scope is alive is released (offset restored, capacity kept)
/// when it closes. Scopes nest; the outermost close also consolidates
/// chained slabs so the next iteration runs out of one resident slab.
class ArenaScope {
 public:
  ArenaScope();
  ~ArenaScope();
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

  /// Scratch from the scope's arena (convenience forwarders).
  float* AllocFloats(int64_t count) { return arena_->AllocFloats(count); }
  void* Alloc(size_t bytes) { return arena_->Alloc(bytes); }

 private:
  ScratchArena* arena_;
  ScratchArena::Mark mark_;
  bool top_level_;
};

/// Process-wide gauge of reserved scratch bytes, summed over all thread
/// arenas that currently exist (exported as the `arena.reserved_bytes`
/// metric). Test / observability support.
size_t TotalArenaReservedBytes();

}  // namespace edde

#endif  // EDDE_UTILS_ARENA_H_
