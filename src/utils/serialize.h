#ifndef EDDE_UTILS_SERIALIZE_H_
#define EDDE_UTILS_SERIALIZE_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "utils/status.h"

namespace edde {

/// How a BinaryWriter lands bytes on disk.
///   kDirect — stream straight into the destination file (legacy behavior;
///             a crash mid-write leaves a torn file behind).
///   kAtomic — buffer in memory and commit via utils/durable_io on Finish()
///             (temp file → fsync → rename → dir fsync), so readers observe
///             either the old file or the complete new one, never a prefix.
enum class Durability {
  kDirect,
  kAtomic,
};

/// Little-endian binary writer used for model checkpoints.
/// All write operations accumulate into an internal error flag; call
/// Finish() to flush and obtain the final Status.
class BinaryWriter {
 public:
  /// Opens `path` for writing; check status() before use. With kAtomic the
  /// destination is untouched until Finish() commits, so open errors on an
  /// unwritable path surface from Finish() instead of the constructor.
  explicit BinaryWriter(const std::string& path,
                        Durability durability = Durability::kDirect);

  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteI64(int64_t v);
  void WriteF32(float v);
  void WriteString(const std::string& s);
  void WriteFloats(const float* data, size_t count);
  /// Raw bytes, no length prefix (section payloads frame themselves).
  void WriteBytes(const void* data, size_t count);

  /// Flushes and closes (kDirect) or atomically commits (kAtomic);
  /// returns the accumulated status.
  Status Finish();

  const Status& status() const { return status_; }

 private:
  std::string path_;
  Durability durability_;
  std::ofstream out_;      // kDirect only
  std::string buffer_;     // kAtomic only
  Status status_;
};

/// Little-endian binary reader matching BinaryWriter.
/// Read operations return false (and set status) on EOF/corruption.
/// Declared lengths read from the file are clamped against the bytes
/// actually remaining, so a corrupt length field yields a Corruption
/// status instead of a multi-gigabyte allocation attempt.
class BinaryReader {
 public:
  /// Opens `path` for reading; check status() before use.
  explicit BinaryReader(const std::string& path);

  bool ReadU32(uint32_t* v);
  bool ReadU64(uint64_t* v);
  bool ReadI64(int64_t* v);
  bool ReadF32(float* v);
  bool ReadString(std::string* s);
  bool ReadFloats(float* data, size_t count);
  /// Raw bytes, no length prefix.
  bool ReadRaw(void* dst, size_t count);

  /// Bytes left between the cursor and end of file.
  uint64_t remaining() const { return file_size_ - offset_; }

  const Status& status() const { return status_; }

 private:
  bool ReadBytes(void* dst, size_t count);

  std::ifstream in_;
  uint64_t file_size_ = 0;
  uint64_t offset_ = 0;
  Status status_;
};

}  // namespace edde

#endif  // EDDE_UTILS_SERIALIZE_H_
