#ifndef EDDE_UTILS_SERIALIZE_H_
#define EDDE_UTILS_SERIALIZE_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "utils/status.h"

namespace edde {

/// Little-endian binary writer used for model checkpoints.
/// All write operations accumulate into an internal error flag; call
/// Finish() to flush and obtain the final Status.
class BinaryWriter {
 public:
  /// Opens `path` for writing; check status() before use.
  explicit BinaryWriter(const std::string& path);

  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteI64(int64_t v);
  void WriteF32(float v);
  void WriteString(const std::string& s);
  void WriteFloats(const float* data, size_t count);

  /// Flushes and closes; returns the accumulated status.
  Status Finish();

  const Status& status() const { return status_; }

 private:
  std::ofstream out_;
  Status status_;
};

/// Little-endian binary reader matching BinaryWriter.
/// Read operations return false (and set status) on EOF/corruption.
class BinaryReader {
 public:
  /// Opens `path` for reading; check status() before use.
  explicit BinaryReader(const std::string& path);

  bool ReadU32(uint32_t* v);
  bool ReadU64(uint64_t* v);
  bool ReadI64(int64_t* v);
  bool ReadF32(float* v);
  bool ReadString(std::string* s);
  bool ReadFloats(float* data, size_t count);

  const Status& status() const { return status_; }

 private:
  bool ReadBytes(void* dst, size_t count);

  std::ifstream in_;
  Status status_;
};

}  // namespace edde

#endif  // EDDE_UTILS_SERIALIZE_H_
