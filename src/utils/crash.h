#ifndef EDDE_UTILS_CRASH_H_
#define EDDE_UTILS_CRASH_H_

#include <cstddef>
#include <string>

namespace edde {

/// Crash flight recorder.
///
/// Every EDDE_LOG record is copied into a bounded in-memory ring (newest
/// ~128 records), so a crash can show the log tail even when stderr went to
/// /dev/null. InstallCrashHandler() hooks SIGSEGV / SIGABRT / SIGFPE /
/// SIGBUS / SIGILL; on delivery the handler writes
/// `edde_crash_<pid>.txt` (run manifest, the log ring, every thread's
/// currently open trace spans) using only async-signal-tolerant writes —
/// pre-serialized buffers, open/write/close, no allocation — then re-raises
/// with the default disposition so the exit status is unchanged.
///
/// The EDDE_CHECK / LOG(FATAL) path goes further: it runs in normal (not
/// signal) context, so before aborting it also flushes the metrics JSONL
/// sink and the trace buffer. A mid-run fatal therefore still leaves a
/// parseable JSONL file and a loadable trace.

/// Installs the signal handlers (idempotent; first call wins).
void InstallCrashHandler();

/// Graceful shutdown (SIGINT / SIGTERM).
///
/// The handler only sets a flag; long-running loops (boosting rounds,
/// training epochs) poll ShutdownRequested() at their safe points, write a
/// final checkpoint, and call GracefulShutdownExit(). A second Ctrl-C while
/// the first is still being honored kills the process immediately with the
/// default disposition — the escape hatch when the safe point is far away.

/// Installs SIGINT/SIGTERM handlers (idempotent; first call wins).
void InstallShutdownHandler();

/// True once SIGINT/SIGTERM arrived (or RequestShutdown ran).
bool ShutdownRequested();

/// The signal that requested shutdown (0 when none).
int ShutdownSignal();

/// Programmatic shutdown request, as if `sig` had been delivered.
void RequestShutdown(int sig);

/// Re-arms after a handled request (tests; multi-run drivers).
void ClearShutdownRequest();

/// Flushes the metrics JSONL sink and the trace buffer, then exits with
/// the conventional 128+signal status. Call after the final checkpoint.
[[noreturn]] void GracefulShutdownExit();

/// Directory for `edde_crash_<pid>.txt` reports ("" = current directory).
void SetCrashReportDir(const std::string& dir);

/// Writes a crash report now. `reason` is a short NUL-terminated tag
/// ("SIGSEGV", "EDDE_CHECK failure"). Async-signal-tolerant. Returns true
/// when the report file was written.
bool WriteCrashReport(const char* reason);

namespace crash_internal {

/// Appends one formatted log record (already including the severity/file
/// prefix) to the flight-recorder ring. Called by the logging backend for
/// every emitted record; lock-free, truncates long records.
void AppendLogRecord(const char* data, size_t size);

/// Copies the ring's records, oldest first, into `out` (cap bytes,
/// NUL-terminated). Returns bytes written. Async-signal-tolerant.
size_t SnapshotLogRing(char* out, size_t cap);

/// Fatal-path hook invoked by LogMessage before abort(): flushes the
/// metrics and trace sinks, then writes a crash report. Reentrancy-guarded
/// so the SIGABRT that follows does not produce a second report.
void HandleFatalLogMessage();

}  // namespace crash_internal
}  // namespace edde

#endif  // EDDE_UTILS_CRASH_H_
