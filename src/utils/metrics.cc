#include "utils/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "utils/durable_io.h"
#include "utils/logging.h"
#include "utils/run_manifest.h"
#include "utils/table.h"

namespace edde {

namespace telemetry_internal {

size_t ShardIndex() {
  // Round-robin shard assignment at first use per thread: cheaper and more
  // uniform than hashing thread ids, and stable for the thread's lifetime.
  static std::atomic<size_t> next{0};
  thread_local const size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

void AtomicAddDouble(std::atomic<double>* target, double delta) {
  double current = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(current, current + delta,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMinDouble(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (value < current && !target->compare_exchange_weak(
                                current, value, std::memory_order_relaxed)) {
  }
}

void AtomicMaxDouble(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (value > current && !target->compare_exchange_weak(
                                current, value, std::memory_order_relaxed)) {
  }
}

}  // namespace telemetry_internal

namespace {

using telemetry_internal::kShards;

/// Hard cap on buffered events so a long-running service cannot grow the
/// log without bound; overflow is counted and reported in the dump.
constexpr size_t kMaxBufferedEvents = 1 << 20;

int BucketIndex(double value) {
  int i = 0;
  double bound = Histogram::kBucketBase;
  while (value > bound && i < Histogram::kNumBuckets - 1) {
    bound *= 2.0;
    ++i;
  }
  return i;
}

std::string FormatJsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

// ---------------------------------------------------------------------------
// Counter / Histogram
// ---------------------------------------------------------------------------

int64_t Counter::Value() const {
  int64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (auto& shard : shards_) {
    shard.value.store(0, std::memory_order_relaxed);
  }
}

void Histogram::Record(double value) {
  if (!(value >= 0.0) || !std::isfinite(value)) value = 0.0;
  Shard& shard = shards_[telemetry_internal::ShardIndex()];
  shard.count.fetch_add(1, std::memory_order_relaxed);
  telemetry_internal::AtomicMinDouble(&shard.min, value);
  telemetry_internal::AtomicMaxDouble(&shard.max, value);
  telemetry_internal::AtomicAddDouble(&shard.sum, value);
  shard.buckets[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
}

void Histogram::Reset() {
  for (auto& shard : shards_) {
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum.store(0.0, std::memory_order_relaxed);
    shard.min.store(std::numeric_limits<double>::infinity(),
                    std::memory_order_relaxed);
    shard.max.store(-std::numeric_limits<double>::infinity(),
                    std::memory_order_relaxed);
    for (auto& bucket : shard.buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
  }
}

int64_t Histogram::Count() const {
  int64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard.count.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Sum() const {
  double total = 0.0;
  for (const auto& shard : shards_) {
    total += shard.sum.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Min() const {
  double result = 0.0;
  bool seen = false;
  for (const auto& shard : shards_) {
    if (shard.count.load(std::memory_order_relaxed) == 0) continue;
    const double v = shard.min.load(std::memory_order_relaxed);
    result = seen ? std::min(result, v) : v;
    seen = true;
  }
  return result;
}

double Histogram::Max() const {
  double result = 0.0;
  for (const auto& shard : shards_) {
    if (shard.count.load(std::memory_order_relaxed) == 0) continue;
    result = std::max(result, shard.max.load(std::memory_order_relaxed));
  }
  return result;
}

double Histogram::Mean() const {
  const int64_t n = Count();
  return n == 0 ? 0.0 : Sum() / static_cast<double>(n);
}

std::vector<int64_t> Histogram::BucketCounts() const {
  std::vector<int64_t> counts(kNumBuckets, 0);
  for (const auto& shard : shards_) {
    for (int i = 0; i < kNumBuckets; ++i) {
      counts[static_cast<size_t>(i)] +=
          shard.buckets[i].load(std::memory_order_relaxed);
    }
  }
  return counts;
}

double Histogram::BucketUpperBound(int i) {
  if (i >= kNumBuckets - 1) {
    return std::numeric_limits<double>::infinity();
  }
  return kBucketBase * std::ldexp(1.0, i);
}

double Histogram::ApproxQuantile(double q) const {
  const int64_t n = Count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<int64_t>(std::ceil(
      q * static_cast<double>(n)));
  const std::vector<int64_t> counts = BucketCounts();
  int64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    cumulative += counts[static_cast<size_t>(i)];
    if (cumulative >= target) {
      const double bound = BucketUpperBound(i);
      // The unbounded tail has no upper bound; the exact max is tighter.
      return std::isfinite(bound) ? std::min(bound, Max()) : Max();
    }
  }
  return Max();
}

// ---------------------------------------------------------------------------
// JsonBuilder
// ---------------------------------------------------------------------------

std::string JsonBuilder::Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonBuilder::Key(const std::string& key) {
  if (!body_.empty()) body_ += ',';
  body_ += '"';
  body_ += Escape(key);
  body_ += "\":";
}

JsonBuilder& JsonBuilder::Add(const std::string& key,
                              const std::string& value) {
  Key(key);
  body_ += '"';
  body_ += Escape(value);
  body_ += '"';
  return *this;
}

JsonBuilder& JsonBuilder::Add(const std::string& key, const char* value) {
  return Add(key, std::string(value));
}

JsonBuilder& JsonBuilder::Add(const std::string& key, double value) {
  Key(key);
  body_ += FormatJsonNumber(value);
  return *this;
}

JsonBuilder& JsonBuilder::Add(const std::string& key, int64_t value) {
  Key(key);
  body_ += std::to_string(value);
  return *this;
}

JsonBuilder& JsonBuilder::Add(const std::string& key, int value) {
  return Add(key, static_cast<int64_t>(value));
}

JsonBuilder& JsonBuilder::Add(const std::string& key, bool value) {
  Key(key);
  body_ += value ? "true" : "false";
  return *this;
}

JsonBuilder& JsonBuilder::AddRaw(const std::string& key,
                                 const std::string& raw) {
  Key(key);
  body_ += raw;
  return *this;
}

std::string JsonBuilder::Build() const { return "{" + body_ + "}"; }

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked singleton: instruments stay valid through static destruction,
  // and the at-exit dump below can run safely.
  static MetricsRegistry* registry = [] {
    auto* r = new MetricsRegistry();
    if (const char* env = std::getenv("EDDE_METRICS_PATH");
        env != nullptr && env[0] != '\0') {
      r->SetSinkPath(env);
    }
    std::atexit([] {
      const Status status = Global().DumpToSink();
      if (!status.ok()) {
        EDDE_LOG(ERROR) << "metrics dump failed: " << status.ToString();
      }
    });
    return r;
  }();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::vector<std::string> MetricsRegistry::HistogramNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) names.push_back(name);
  return names;
}

void MetricsRegistry::EmitEvent(const std::string& json_object) {
  if (!events_enabled()) return;
  std::lock_guard<std::mutex> lock(events_mu_);
  if (events_.size() >= kMaxBufferedEvents) {
    ++events_dropped_;
    return;
  }
  events_.push_back(json_object);
}

void MetricsRegistry::SetSinkPath(const std::string& path) {
  std::lock_guard<std::mutex> lock(events_mu_);
  sink_path_ = path;
  events_enabled_.store(!path.empty(), std::memory_order_relaxed);
}

std::string MetricsRegistry::sink_path() const {
  std::lock_guard<std::mutex> lock(events_mu_);
  return sink_path_;
}

Status MetricsRegistry::DumpJsonl(const std::string& path) const {
  // Rendered into memory and committed atomically so a crash (or a second
  // dump racing an abnormal exit) can never leave a half-written JSONL
  // behind — consumers see the previous complete dump or the new one.
  std::ostringstream out;
  // Provenance header: the stream's first record identifies the run that
  // produced it (program, seed, flags, dataset fingerprints — see
  // utils/run_manifest.h).
  out << JsonBuilder()
             .Add("record", "run_manifest")
             .AddRaw("manifest", RunManifestJson())
             .Build()
      << '\n';
  {
    std::lock_guard<std::mutex> lock(events_mu_);
    for (const auto& event : events_) out << event << '\n';
    if (events_dropped_ > 0) {
      out << JsonBuilder()
                 .Add("type", "meta")
                 .Add("events_dropped", events_dropped_)
                 .Build()
          << '\n';
    }
  }
  // Scoped: the atomic commit below bumps durable-IO counters, which takes
  // mu_ again — holding it across the write would self-deadlock.
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, counter] : counters_) {
      out << JsonBuilder()
                 .Add("type", "counter")
                 .Add("name", name)
                 .Add("value", counter->Value())
                 .Build()
          << '\n';
    }
    for (const auto& [name, gauge] : gauges_) {
      out << JsonBuilder()
                 .Add("type", "gauge")
                 .Add("name", name)
                 .Add("value", gauge->Value())
                 .Build()
          << '\n';
    }
    for (const auto& [name, hist] : histograms_) {
      std::string buckets = "[";
      const std::vector<int64_t> counts = hist->BucketCounts();
      bool first = true;
      for (int i = 0; i < Histogram::kNumBuckets; ++i) {
        if (counts[static_cast<size_t>(i)] == 0) continue;
        if (!first) buckets += ',';
        first = false;
        const double bound = Histogram::BucketUpperBound(i);
        buckets += '[';
        buckets += std::isfinite(bound) ? FormatJsonNumber(bound) : "null";
        buckets += ',';
        buckets += std::to_string(counts[static_cast<size_t>(i)]);
        buckets += ']';
      }
      buckets += ']';
      out << JsonBuilder()
                 .Add("type", "histogram")
                 .Add("name", name)
                 .Add("count", hist->Count())
                 .Add("sum", hist->Sum())
                 .Add("min", hist->Min())
                 .Add("max", hist->Max())
                 .Add("mean", hist->Mean())
                 .Add("p50", hist->ApproxQuantile(0.5))
                 .Add("p95", hist->ApproxQuantile(0.95))
                 .AddRaw("buckets", buckets)
                 .Build()
          << '\n';
    }
  }
  return AtomicWriteFile(path, out.str());
}

Status MetricsRegistry::DumpToSink() const {
  const std::string path = sink_path();
  if (path.empty()) return Status::OK();
  return DumpJsonl(path);
}

void MetricsRegistry::PrintSummary(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  bool any = false;
  if (!counters_.empty() || !gauges_.empty()) {
    TablePrinter scalars({"Metric", "Kind", "Value"});
    for (const auto& [name, counter] : counters_) {
      scalars.AddRow({name, "counter", std::to_string(counter->Value())});
    }
    for (const auto& [name, gauge] : gauges_) {
      scalars.AddRow({name, "gauge", FormatFloat(gauge->Value(), 3)});
    }
    scalars.Print(os);
    any = true;
  }
  if (!histograms_.empty()) {
    if (any) os << '\n';
    TablePrinter timings(
        {"Region", "Count", "Total s", "Mean ms", "p95 ms", "Max ms"});
    for (const auto& [name, hist] : histograms_) {
      timings.AddRow({name, std::to_string(hist->Count()),
                      FormatFloat(hist->Sum(), 3),
                      FormatFloat(hist->Mean() * 1e3, 3),
                      FormatFloat(hist->ApproxQuantile(0.95) * 1e3, 3),
                      FormatFloat(hist->Max() * 1e3, 3)});
    }
    timings.Print(os);
    any = true;
  }
  if (!any) os << "(no telemetry recorded)\n";
}

void MetricsRegistry::Reset() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, counter] : counters_) counter->Reset();
    for (auto& [name, gauge] : gauges_) gauge->Set(0.0);
    for (auto& [name, hist] : histograms_) hist->Reset();
  }
  std::lock_guard<std::mutex> lock(events_mu_);
  events_.clear();
  events_dropped_ = 0;
}

}  // namespace edde
