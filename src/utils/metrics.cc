#include "utils/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "utils/durable_io.h"
#include "utils/logging.h"
#include "utils/run_manifest.h"
#include "utils/table.h"

namespace edde {

namespace telemetry_internal {

size_t ShardIndex() {
  // Round-robin shard assignment at first use per thread: cheaper and more
  // uniform than hashing thread ids, and stable for the thread's lifetime.
  static std::atomic<size_t> next{0};
  thread_local const size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

void AtomicAddDouble(std::atomic<double>* target, double delta) {
  double current = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(current, current + delta,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMinDouble(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (value < current && !target->compare_exchange_weak(
                                current, value, std::memory_order_relaxed)) {
  }
}

void AtomicMaxDouble(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (value > current && !target->compare_exchange_weak(
                                current, value, std::memory_order_relaxed)) {
  }
}

}  // namespace telemetry_internal

namespace {

using telemetry_internal::kShards;

/// Hard cap on buffered events so a long-running service cannot grow the
/// log without bound; overflow is counted and reported in the dump.
constexpr size_t kMaxBufferedEvents = 1 << 20;

int BucketIndex(double value) {
  int i = 0;
  double bound = Histogram::kBucketBase;
  while (value > bound && i < Histogram::kNumBuckets - 1) {
    bound *= 2.0;
    ++i;
  }
  return i;
}

std::string FormatJsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

// ---------------------------------------------------------------------------
// Counter / Histogram
// ---------------------------------------------------------------------------

int64_t Counter::Value() const {
  int64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (auto& shard : shards_) {
    shard.value.store(0, std::memory_order_relaxed);
  }
}

void Histogram::Record(double value) {
  if (!(value >= 0.0) || !std::isfinite(value)) value = 0.0;
  Shard& shard = shards_[telemetry_internal::ShardIndex()];
  shard.count.fetch_add(1, std::memory_order_relaxed);
  telemetry_internal::AtomicMinDouble(&shard.min, value);
  telemetry_internal::AtomicMaxDouble(&shard.max, value);
  telemetry_internal::AtomicAddDouble(&shard.sum, value);
  shard.buckets[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
}

void Histogram::Reset() {
  for (auto& shard : shards_) {
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum.store(0.0, std::memory_order_relaxed);
    shard.min.store(std::numeric_limits<double>::infinity(),
                    std::memory_order_relaxed);
    shard.max.store(-std::numeric_limits<double>::infinity(),
                    std::memory_order_relaxed);
    for (auto& bucket : shard.buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
  }
}

int64_t Histogram::Count() const {
  int64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard.count.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Sum() const {
  double total = 0.0;
  for (const auto& shard : shards_) {
    total += shard.sum.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Min() const {
  double result = 0.0;
  bool seen = false;
  for (const auto& shard : shards_) {
    if (shard.count.load(std::memory_order_relaxed) == 0) continue;
    const double v = shard.min.load(std::memory_order_relaxed);
    result = seen ? std::min(result, v) : v;
    seen = true;
  }
  return result;
}

double Histogram::Max() const {
  double result = 0.0;
  for (const auto& shard : shards_) {
    if (shard.count.load(std::memory_order_relaxed) == 0) continue;
    result = std::max(result, shard.max.load(std::memory_order_relaxed));
  }
  return result;
}

double Histogram::Mean() const {
  const int64_t n = Count();
  return n == 0 ? 0.0 : Sum() / static_cast<double>(n);
}

std::vector<int64_t> Histogram::BucketCounts() const {
  std::vector<int64_t> counts(kNumBuckets, 0);
  for (const auto& shard : shards_) {
    for (int i = 0; i < kNumBuckets; ++i) {
      counts[static_cast<size_t>(i)] +=
          shard.buckets[i].load(std::memory_order_relaxed);
    }
  }
  return counts;
}

double Histogram::BucketUpperBound(int i) {
  if (i >= kNumBuckets - 1) {
    return std::numeric_limits<double>::infinity();
  }
  return kBucketBase * std::ldexp(1.0, i);
}

namespace {

/// Shared quantile rule over an already-aggregated bucket vector, so
/// ApproxQuantile and Snapshot (and through it every exposition surface)
/// cannot disagree: upper bound of the bucket holding sample
/// ceil(q*n), clamped by the exact max (tighter for the top bucket and
/// the unbounded tail).
double QuantileFromBuckets(const std::vector<int64_t>& counts, int64_t n,
                           double max, double q) {
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target =
      static_cast<int64_t>(std::ceil(q * static_cast<double>(n)));
  int64_t cumulative = 0;
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    cumulative += counts[static_cast<size_t>(i)];
    if (cumulative >= target) {
      const double bound = Histogram::BucketUpperBound(i);
      return std::isfinite(bound) ? std::min(bound, max) : max;
    }
  }
  return max;
}

}  // namespace

double Histogram::ApproxQuantile(double q) const {
  return QuantileFromBuckets(BucketCounts(), Count(), Max(), q);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  // Buckets first: a sample racing in after this read may bump count/sum
  // but never subtracts, so the quantile walk stays internally consistent
  // with the bucket list we publish.
  const std::vector<int64_t> counts = BucketCounts();
  int64_t bucket_total = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    const int64_t c = counts[static_cast<size_t>(i)];
    if (c == 0) continue;
    bucket_total += c;
    snap.buckets.emplace_back(BucketUpperBound(i), c);
  }
  snap.count = bucket_total;
  snap.sum = Sum();
  snap.min = Min();
  snap.max = Max();
  snap.mean = bucket_total == 0
                  ? 0.0
                  : snap.sum / static_cast<double>(bucket_total);
  snap.p50 = QuantileFromBuckets(counts, bucket_total, snap.max, 0.50);
  snap.p95 = QuantileFromBuckets(counts, bucket_total, snap.max, 0.95);
  snap.p99 = QuantileFromBuckets(counts, bucket_total, snap.max, 0.99);
  return snap;
}

// ---------------------------------------------------------------------------
// JsonBuilder
// ---------------------------------------------------------------------------

std::string JsonBuilder::Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonBuilder::Key(const std::string& key) {
  if (!body_.empty()) body_ += ',';
  body_ += '"';
  body_ += Escape(key);
  body_ += "\":";
}

JsonBuilder& JsonBuilder::Add(const std::string& key,
                              const std::string& value) {
  Key(key);
  body_ += '"';
  body_ += Escape(value);
  body_ += '"';
  return *this;
}

JsonBuilder& JsonBuilder::Add(const std::string& key, const char* value) {
  return Add(key, std::string(value));
}

JsonBuilder& JsonBuilder::Add(const std::string& key, double value) {
  Key(key);
  body_ += FormatJsonNumber(value);
  return *this;
}

JsonBuilder& JsonBuilder::Add(const std::string& key, int64_t value) {
  Key(key);
  body_ += std::to_string(value);
  return *this;
}

JsonBuilder& JsonBuilder::Add(const std::string& key, int value) {
  return Add(key, static_cast<int64_t>(value));
}

JsonBuilder& JsonBuilder::Add(const std::string& key, bool value) {
  Key(key);
  body_ += value ? "true" : "false";
  return *this;
}

JsonBuilder& JsonBuilder::AddRaw(const std::string& key,
                                 const std::string& raw) {
  Key(key);
  body_ += raw;
  return *this;
}

std::string JsonBuilder::Build() const { return "{" + body_ + "}"; }

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked singleton: instruments stay valid through static destruction,
  // and the at-exit dump below can run safely.
  static MetricsRegistry* registry = [] {
    auto* r = new MetricsRegistry();
    if (const char* env = std::getenv("EDDE_METRICS_PATH");
        env != nullptr && env[0] != '\0') {
      r->SetSinkPath(env);
    }
    std::atexit([] {
      const Status status = Global().DumpToSink();
      if (!status.ok()) {
        EDDE_LOG(ERROR) << "metrics dump failed: " << status.ToString();
      }
    });
    return r;
  }();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::vector<std::string> MetricsRegistry::HistogramNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) names.push_back(name);
  return names;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  // Collect the instrument pointers under mu_, read them outside it: the
  // reads are lock-free and the pointers are stable for the process
  // lifetime, so the map lock never brackets a (sharded, O(shards))
  // aggregate read.
  std::vector<std::pair<std::string, const Counter*>> counters;
  std::vector<std::pair<std::string, const Gauge*>> gauges;
  std::vector<std::pair<std::string, const Histogram*>> histograms;
  {
    std::lock_guard<std::mutex> lock(mu_);
    counters.reserve(counters_.size());
    for (const auto& [name, c] : counters_) counters.emplace_back(name, c.get());
    gauges.reserve(gauges_.size());
    for (const auto& [name, g] : gauges_) gauges.emplace_back(name, g.get());
    histograms.reserve(histograms_.size());
    for (const auto& [name, h] : histograms_) {
      histograms.emplace_back(name, h.get());
    }
  }
  MetricsSnapshot snap;
  snap.counters.reserve(counters.size());
  for (const auto& [name, c] : counters) {
    snap.counters.emplace_back(name, c->Value());
  }
  snap.gauges.reserve(gauges.size());
  for (const auto& [name, g] : gauges) {
    snap.gauges.emplace_back(name, g->Value());
  }
  snap.histograms.reserve(histograms.size());
  for (const auto& [name, h] : histograms) {
    snap.histograms.emplace_back(name, h->Snapshot());
  }
  return snap;
}

std::string MetricsRegistry::RenderPrometheusText() const {
  return RenderPrometheus(Snapshot());
}

void MetricsRegistry::EmitEvent(const std::string& json_object) {
  if (!events_enabled()) return;
  std::lock_guard<std::mutex> lock(events_mu_);
  if (events_.size() >= kMaxBufferedEvents) {
    ++events_dropped_;
    return;
  }
  events_.push_back(json_object);
}

void MetricsRegistry::SetSinkPath(const std::string& path) {
  std::lock_guard<std::mutex> lock(events_mu_);
  sink_path_ = path;
  events_enabled_.store(!path.empty(), std::memory_order_relaxed);
}

std::string MetricsRegistry::sink_path() const {
  std::lock_guard<std::mutex> lock(events_mu_);
  return sink_path_;
}

Status MetricsRegistry::DumpJsonl(const std::string& path) const {
  // Rendered into memory and committed atomically so a crash (or a second
  // dump racing an abnormal exit) can never leave a half-written JSONL
  // behind — consumers see the previous complete dump or the new one.
  std::ostringstream out;
  // Provenance header: the stream's first record identifies the run that
  // produced it (program, seed, flags, dataset fingerprints — see
  // utils/run_manifest.h).
  out << JsonBuilder()
             .Add("record", "run_manifest")
             .AddRaw("manifest", RunManifestJson())
             .Build()
      << '\n';
  {
    std::lock_guard<std::mutex> lock(events_mu_);
    for (const auto& event : events_) out << event << '\n';
    if (events_dropped_ > 0) {
      out << JsonBuilder()
                 .Add("type", "meta")
                 .Add("events_dropped", events_dropped_)
                 .Build()
          << '\n';
    }
  }
  // Instruments go through the same Snapshot() the exposition and summary
  // paths use, so the three surfaces can never disagree. The snapshot also
  // keeps mu_ out of scope here: the atomic commit below bumps durable-IO
  // counters, which takes mu_ again — holding it across the write would
  // self-deadlock.
  const MetricsSnapshot snap = Snapshot();
  for (const auto& [name, value] : snap.counters) {
    out << JsonBuilder()
               .Add("type", "counter")
               .Add("name", name)
               .Add("value", value)
               .Build()
        << '\n';
  }
  for (const auto& [name, value] : snap.gauges) {
    out << JsonBuilder()
               .Add("type", "gauge")
               .Add("name", name)
               .Add("value", value)
               .Build()
        << '\n';
  }
  for (const auto& [name, hist] : snap.histograms) {
    std::string buckets = "[";
    bool first = true;
    for (const auto& [bound, count] : hist.buckets) {
      if (!first) buckets += ',';
      first = false;
      buckets += '[';
      buckets += std::isfinite(bound) ? FormatJsonNumber(bound) : "null";
      buckets += ',';
      buckets += std::to_string(count);
      buckets += ']';
    }
    buckets += ']';
    out << JsonBuilder()
               .Add("type", "histogram")
               .Add("name", name)
               .Add("count", hist.count)
               .Add("sum", hist.sum)
               .Add("min", hist.min)
               .Add("max", hist.max)
               .Add("mean", hist.mean)
               .Add("p50", hist.p50)
               .Add("p95", hist.p95)
               .Add("p99", hist.p99)
               .AddRaw("buckets", buckets)
               .Build()
        << '\n';
  }
  return AtomicWriteFile(path, out.str());
}

Status MetricsRegistry::DumpToSink() const {
  const std::string path = sink_path();
  if (path.empty()) return Status::OK();
  return DumpJsonl(path);
}

void MetricsRegistry::PrintSummary(std::ostream& os) const {
  // Same Snapshot() the exposition path renders, so the summary table and
  // a concurrent scrape report identical numbers.
  const MetricsSnapshot snap = Snapshot();
  bool any = false;
  if (!snap.counters.empty() || !snap.gauges.empty()) {
    TablePrinter scalars({"Metric", "Kind", "Value"});
    for (const auto& [name, value] : snap.counters) {
      scalars.AddRow({name, "counter", std::to_string(value)});
    }
    for (const auto& [name, value] : snap.gauges) {
      scalars.AddRow({name, "gauge", FormatFloat(value, 3)});
    }
    scalars.Print(os);
    any = true;
  }
  if (!snap.histograms.empty()) {
    if (any) os << '\n';
    TablePrinter timings({"Region", "Count", "Total s", "Mean ms", "Min ms",
                          "p50 ms", "p95 ms", "p99 ms", "Max ms"});
    for (const auto& [name, hist] : snap.histograms) {
      timings.AddRow({name, std::to_string(hist.count),
                      FormatFloat(hist.sum, 3),
                      FormatFloat(hist.mean * 1e3, 3),
                      FormatFloat(hist.min * 1e3, 3),
                      FormatFloat(hist.p50 * 1e3, 3),
                      FormatFloat(hist.p95 * 1e3, 3),
                      FormatFloat(hist.p99 * 1e3, 3),
                      FormatFloat(hist.max * 1e3, 3)});
    }
    timings.Print(os);
    any = true;
  }
  if (!any) os << "(no telemetry recorded)\n";
}

namespace {

/// Prometheus metric names allow [a-zA-Z_:][a-zA-Z0-9_:]*; instrument
/// names here use '.'/'/' separators, which all map to '_'.
std::string PromName(const std::string& name) {
  std::string out = "edde_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

/// Exposition values must parse as Go floats and the scrape surface
/// promises NaN-free output, so non-finite values clamp to 0.
std::string PromValue(double v) {
  if (!std::isfinite(v)) v = 0.0;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void AppendPromLine(std::string* out, const std::string& name,
                    const std::string& labels, const std::string& value) {
  out->append(name);
  out->append(labels);
  out->push_back(' ');
  out->append(value);
  out->push_back('\n');
}

}  // namespace

std::string RenderPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = PromName(name);
    out += "# TYPE " + prom + " counter\n";
    AppendPromLine(&out, prom, "", std::to_string(value));
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = PromName(name);
    out += "# TYPE " + prom + " gauge\n";
    AppendPromLine(&out, prom, "", PromValue(value));
  }
  for (const auto& [name, hist] : snapshot.histograms) {
    const std::string prom = PromName(name);
    out += "# TYPE " + prom + " histogram\n";
    // Prometheus buckets are cumulative and must end with le="+Inf".
    int64_t cumulative = 0;
    for (const auto& [bound, count] : hist.buckets) {
      cumulative += count;
      if (!std::isfinite(bound)) continue;  // the tail is the +Inf line
      AppendPromLine(&out, prom + "_bucket",
                     "{le=\"" + PromValue(bound) + "\"}",
                     std::to_string(cumulative));
    }
    AppendPromLine(&out, prom + "_bucket", "{le=\"+Inf\"}",
                   std::to_string(hist.count));
    AppendPromLine(&out, prom + "_sum", "", PromValue(hist.sum));
    AppendPromLine(&out, prom + "_count", "", std::to_string(hist.count));
    // Exact extrema and bucket-derived quantile estimates ride alongside
    // the histogram as gauges (a family cannot be both histogram and
    // summary); dashboards get p50/p95/p99 without PromQL bucket math.
    out += "# TYPE " + prom + "_min gauge\n";
    AppendPromLine(&out, prom + "_min", "", PromValue(hist.min));
    out += "# TYPE " + prom + "_max gauge\n";
    AppendPromLine(&out, prom + "_max", "", PromValue(hist.max));
    out += "# TYPE " + prom + "_quantile gauge\n";
    AppendPromLine(&out, prom + "_quantile", "{quantile=\"0.5\"}",
                   PromValue(hist.p50));
    AppendPromLine(&out, prom + "_quantile", "{quantile=\"0.95\"}",
                   PromValue(hist.p95));
    AppendPromLine(&out, prom + "_quantile", "{quantile=\"0.99\"}",
                   PromValue(hist.p99));
  }
  return out;
}

void MetricsRegistry::Reset() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, counter] : counters_) counter->Reset();
    for (auto& [name, gauge] : gauges_) gauge->Set(0.0);
    for (auto& [name, hist] : histograms_) hist->Reset();
  }
  std::lock_guard<std::mutex> lock(events_mu_);
  events_.clear();
  events_dropped_ = 0;
}

}  // namespace edde
