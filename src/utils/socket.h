#ifndef EDDE_UTILS_SOCKET_H_
#define EDDE_UTILS_SOCKET_H_

#include <cstdint>
#include <string>

#include "utils/status.h"

namespace edde {

/// Minimal TCP plumbing for edde-serve (src/serve/) and its in-tree
/// clients. Loopback-oriented: the server binds 127.0.0.1 only — the
/// protocol is unauthenticated, so it must never listen on a routable
/// interface.
///
/// Framing: every message on the wire is a *frame* — a 4-byte
/// little-endian unsigned payload length followed by that many payload
/// bytes (JSON text for the serve protocol; the framing itself is
/// payload-agnostic). Length-prefix framing keeps message boundaries
/// independent of TCP segmentation; the kMaxFrameBytes cap bounds the
/// allocation a malformed or hostile prefix can demand.

/// Upper bound on one frame's payload. Large enough for a few thousand
/// feature rows per request, small enough that a garbage length prefix
/// cannot OOM the server.
inline constexpr uint32_t kMaxFrameBytes = 8u << 20;  // 8 MiB

/// RAII file descriptor (close-on-destroy, move-only).
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { reset(); }
  UniqueFd(UniqueFd&& other) noexcept : fd_(other.release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) reset(other.release());
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// Listening socket on 127.0.0.1:`port` (SO_REUSEADDR; `port` 0 lets the
/// kernel pick an ephemeral port — query it with LocalPort).
Result<UniqueFd> ListenTcp(uint16_t port, int backlog = 64);

/// The local port a bound socket ended up on.
Result<uint16_t> LocalPort(int fd);

/// Blocking accept. IOError on failure (including EINVAL/EBADF after the
/// listener was shut down — the server's clean-stop path).
Result<UniqueFd> AcceptConn(int listen_fd);

/// Blocking connect to `host`:`port` (numeric IPv4 host, e.g. 127.0.0.1).
Result<UniqueFd> ConnectTcp(const std::string& host, uint16_t port);

/// Caps how long a blocking send may stall on a full socket buffer
/// (SO_SNDTIMEO). After the timeout, SendFrame fails with
/// DeadlineExceeded instead of blocking forever — the guard that keeps a
/// stalled reader from wedging a response writer. timeout_ms <= 0 restores
/// the default (block indefinitely).
Status SetSendTimeout(int fd, int64_t timeout_ms);

/// Same for blocking reads (SO_RCVTIMEO): RecvFrame fails with
/// DeadlineExceeded once the peer has been silent for the window.
Status SetRecvTimeout(int fd, int64_t timeout_ms);

/// Writes one frame (length prefix + payload). Payloads larger than
/// kMaxFrameBytes are InvalidArgument — oversized replies are a server
/// bug, not a client condition.
Status SendFrame(int fd, const std::string& payload);

/// Reads one frame into `*payload`. IOError on a closed/failed peer;
/// InvalidArgument when the prefix exceeds kMaxFrameBytes (the caller
/// should drop the connection — the stream is no longer in sync). On clean
/// EOF before any prefix byte, returns NotFound — the peer simply hung up
/// between messages, which most callers treat as a normal end of stream.
Status RecvFrame(int fd, std::string* payload);

}  // namespace edde

#endif  // EDDE_UTILS_SOCKET_H_
