#ifndef EDDE_UTILS_TIMER_H_
#define EDDE_UTILS_TIMER_H_

#include <chrono>

namespace edde {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Resets the stopwatch to now.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction / last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction / last Reset().
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace edde

#endif  // EDDE_UTILS_TIMER_H_
