#ifndef EDDE_UTILS_TIMER_H_
#define EDDE_UTILS_TIMER_H_

// Timer now lives in utils/trace.h next to TraceScope so the repo has one
// steady_clock timing primitive. This forwarding header keeps old includes
// working; new code should include "utils/trace.h" directly.
#include "utils/trace.h"

#endif  // EDDE_UTILS_TIMER_H_
