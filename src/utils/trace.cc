#include "utils/trace.h"

#include <string>

namespace edde {

Histogram* TraceHistogram(const char* label) {
  return MetricsRegistry::Global().GetHistogram(std::string("time/") +
                                                label);
}

}  // namespace edde
