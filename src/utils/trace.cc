#include "utils/trace.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <vector>

#include "utils/durable_io.h"
#include "utils/logging.h"
#include "utils/run_manifest.h"

namespace edde {

namespace {

/// Spans kept per thread; overflow drops the oldest records (the export
/// reports the drop count). 1<<16 records x 32 bytes = 2 MiB per traced
/// thread, allocated lazily on the thread's first span.
constexpr uint64_t kTraceRingCapacity = 1ull << 16;

/// Threads that can register timeline state. Beyond this, extra threads
/// trace nothing (counted in the export).
constexpr int kMaxTraceThreads = 256;

/// One completed span or counter sample in a thread's ring.
struct TraceRecord {
  const char* label = nullptr;  ///< registry-owned, stable for process life
  int64_t ts_us = 0;            ///< microseconds since the trace epoch
  int64_t payload = 0;          ///< span: duration µs; counter: double bits
  uint64_t trace_id = 0;        ///< request tag; 0 = none (span kind only)
  int32_t kind = 0;             ///< 0 = span, 1 = counter
  int32_t pad = 0;
};

constexpr int32_t kKindSpan = 0;
constexpr int32_t kKindCounter = 1;

/// Per-thread timeline state. Never freed: the export and the crash
/// handler may read it after the owning thread exited. Writers are
/// single-threaded (the owning thread); readers tolerate racing with the
/// most recent writes.
struct ThreadTraceState {
  int tid = 0;
  char name[48] = {0};
  std::atomic<uint64_t> written{0};  ///< records ever appended
  std::atomic<TraceRecord*> ring{nullptr};

  static constexpr int kMaxOpen = 64;
  const char* open_labels[kMaxOpen] = {nullptr};
  int64_t open_start_us[kMaxOpen] = {0};
  uint64_t open_trace_ids[kMaxOpen] = {0};
  std::atomic<int> open_depth{0};
};

// Fixed-size registry read directly (no locks) by the crash handler.
ThreadTraceState* g_thread_states[kMaxTraceThreads] = {nullptr};
std::atomic<int> g_thread_count{0};
std::atomic<int64_t> g_threads_lost{0};

struct TraceGlobal {
  std::atomic<bool> enabled{false};
  mutable std::mutex mu;             // guards path
  std::string path;
  std::mutex register_mu;            // serializes thread registration
  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();

  TraceGlobal() {
    if (const char* env = std::getenv("EDDE_TRACE_PATH");
        env != nullptr && env[0] != '\0') {
      path = env;
      enabled.store(true, std::memory_order_relaxed);
    }
    std::atexit([] {
      const Status status = DumpTrace();
      if (!status.ok()) {
        EDDE_LOG(ERROR) << "trace dump failed: " << status.ToString();
      }
    });
  }
};

// Leaked singleton, same reasoning as MetricsRegistry.
TraceGlobal& Global() {
  static TraceGlobal* global = new TraceGlobal();
  return *global;
}

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - Global().epoch)
      .count();
}

thread_local ThreadTraceState* t_trace_state = nullptr;

/// The calling thread's installed request trace id (ScopedTraceId).
thread_local uint64_t t_trace_id = 0;

/// splitmix64: a full-period 64-bit mixer — cheap, stateless, and entirely
/// separate from the tensor RNG, so minting ids can never perturb training
/// or inference results.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Registers (once) and returns the calling thread's timeline state, or
/// nullptr when the thread table is full.
ThreadTraceState* ThreadState() {
  if (t_trace_state != nullptr) return t_trace_state;
  TraceGlobal& global = Global();
  std::lock_guard<std::mutex> lock(global.register_mu);
  const int index = g_thread_count.load(std::memory_order_relaxed);
  if (index >= kMaxTraceThreads) {
    g_threads_lost.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  auto* state = new ThreadTraceState();  // leaked by design, see struct doc
  state->tid = index;
  std::snprintf(state->name, sizeof(state->name), "thread %d", index);
  g_thread_states[index] = state;
  // Publish the slot after the state is fully constructed.
  g_thread_count.store(index + 1, std::memory_order_release);
  t_trace_state = state;
  return state;
}

void AppendRecord(ThreadTraceState* state, const TraceRecord& record) {
  TraceRecord* ring = state->ring.load(std::memory_order_relaxed);
  if (ring == nullptr) {
    ring = new TraceRecord[kTraceRingCapacity];
    state->ring.store(ring, std::memory_order_release);
  }
  const uint64_t i = state->written.load(std::memory_order_relaxed);
  ring[i % kTraceRingCapacity] = record;
  state->written.store(i + 1, std::memory_order_release);
}

/// Small async-signal-safe append helpers for SnapshotOpenSpans.
size_t AppendStr(char* buf, size_t cap, size_t pos, const char* s) {
  while (*s != '\0' && pos + 1 < cap) buf[pos++] = *s++;
  return pos;
}

size_t AppendInt(char* buf, size_t cap, size_t pos, int64_t v) {
  char digits[24];
  int n = 0;
  uint64_t u = v < 0 ? static_cast<uint64_t>(-(v + 1)) + 1
                     : static_cast<uint64_t>(v);
  if (v < 0 && pos + 1 < cap) buf[pos++] = '-';
  do {
    digits[n++] = static_cast<char>('0' + u % 10);
    u /= 10;
  } while (u != 0 && n < 24);
  while (n > 0 && pos + 1 < cap) buf[pos++] = digits[--n];
  return pos;
}

}  // namespace

Histogram* TraceHistogram(const char* label) {
  return MetricsRegistry::Global().GetHistogram(std::string("time/") +
                                                label);
}

const TraceRegion* GetTraceRegion(const char* label) {
  // The map node owns both the region and the stable label string the span
  // records point at; nodes are never erased.
  static std::mutex mu;
  static std::map<std::string, TraceRegion>* regions =
      new std::map<std::string, TraceRegion>();
  std::lock_guard<std::mutex> lock(mu);
  auto [it, inserted] = regions->try_emplace(label);
  if (inserted) {
    it->second.histogram = TraceHistogram(label);
    it->second.label = it->first.c_str();
  }
  return &it->second;
}

namespace {

/// Stable storage for counter-track labels. Counters are not regions — no
/// timing histogram should appear for them in the summary tables — but
/// their records outlive the call, so the label string must too.
const char* InternCounterLabel(const char* label) {
  static std::mutex mu;
  static std::map<std::string, int>* labels = new std::map<std::string, int>();
  std::lock_guard<std::mutex> lock(mu);
  return labels->try_emplace(label).first->first.c_str();
}

}  // namespace

bool TraceEnabled() {
  return Global().enabled.load(std::memory_order_relaxed);
}

void SetTracePath(const std::string& path) {
  TraceGlobal& global = Global();
  std::lock_guard<std::mutex> lock(global.mu);
  global.path = path;
  global.enabled.store(!path.empty(), std::memory_order_relaxed);
}

std::string trace_path() {
  TraceGlobal& global = Global();
  std::lock_guard<std::mutex> lock(global.mu);
  return global.path;
}

void TraceCounter(const char* label, double value) {
  if (!TraceEnabled()) return;
  ThreadTraceState* state = ThreadState();
  if (state == nullptr) return;
  TraceRecord record;
  record.label = InternCounterLabel(label);
  record.ts_us = NowMicros();
  std::memcpy(&record.payload, &value, sizeof(value));
  record.kind = kKindCounter;
  AppendRecord(state, record);
}

std::string FormatTraceId(uint64_t id) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(id));
  return buf;
}

bool IsValidTraceId(const std::string& s) {
  if (s.empty() || s.size() > 16) return false;
  for (char c : s) {
    const bool hex = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') ||
                     (c >= 'A' && c <= 'F');
    if (!hex) return false;
  }
  return true;
}

uint64_t ParseTraceId(const std::string& s) {
  if (!IsValidTraceId(s)) return 0;
  uint64_t id = 0;
  for (char c : s) {
    id <<= 4;
    if (c >= '0' && c <= '9') {
      id |= static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      id |= static_cast<uint64_t>(c - 'a' + 10);
    } else {
      id |= static_cast<uint64_t>(c - 'A' + 10);
    }
  }
  return id;
}

uint64_t MintTraceId() {
  // Stream salted once per process with the wall clock, so two server
  // instances started back to back don't mint colliding id sequences.
  static const uint64_t salt = static_cast<uint64_t>(
      std::chrono::system_clock::now().time_since_epoch().count());
  static std::atomic<uint64_t> next{0};
  uint64_t id;
  do {
    id = SplitMix64(salt ^ next.fetch_add(1, std::memory_order_relaxed));
  } while (id == 0);  // 0 means "no id"; skip the one colliding output
  return id;
}

uint64_t CurrentTraceId() { return t_trace_id; }

ScopedTraceId::ScopedTraceId(uint64_t id) : prev_(t_trace_id) {
  if (id != 0) t_trace_id = id;
}

ScopedTraceId::~ScopedTraceId() { t_trace_id = prev_; }

void TraceCompleteSpan(const TraceRegion* region,
                       std::chrono::steady_clock::time_point begin,
                       std::chrono::steady_clock::time_point end,
                       uint64_t trace_id) {
  if (end < begin) end = begin;
  region->histogram->Record(
      std::chrono::duration<double>(end - begin).count());
  if (!TraceEnabled()) return;
  ThreadTraceState* state = ThreadState();
  if (state == nullptr) return;
  const TraceGlobal& global = Global();
  TraceRecord record;
  record.label = region->label;
  record.ts_us = std::chrono::duration_cast<std::chrono::microseconds>(
                     begin - global.epoch)
                     .count();
  record.payload = std::chrono::duration_cast<std::chrono::microseconds>(
                       end - begin)
                       .count();
  record.trace_id = trace_id;
  record.kind = kKindSpan;
  AppendRecord(state, record);
}

void SetTraceThreadName(const char* name) {
  ThreadTraceState* state = ThreadState();
  if (state == nullptr) return;
  std::snprintf(state->name, sizeof(state->name), "%s", name);
}

int TraceScope::BeginSpan(const char* label) {
  ThreadTraceState* state = ThreadState();
  if (state == nullptr) return -1;
  const int depth = state->open_depth.load(std::memory_order_relaxed);
  if (depth >= ThreadTraceState::kMaxOpen) return -1;
  state->open_labels[depth] = label;
  state->open_start_us[depth] = NowMicros();
  state->open_trace_ids[depth] = t_trace_id;
  // Release so the crash handler never reads a depth whose label slot is
  // still stale.
  state->open_depth.store(depth + 1, std::memory_order_release);
  return depth;
}

void TraceScope::EndSpan(int depth) {
  ThreadTraceState* state = t_trace_state;  // BeginSpan registered it
  TraceRecord record;
  record.label = state->open_labels[depth];
  record.ts_us = state->open_start_us[depth];
  record.payload = NowMicros() - record.ts_us;
  record.trace_id = state->open_trace_ids[depth];
  record.kind = kKindSpan;
  state->open_depth.store(depth, std::memory_order_relaxed);
  AppendRecord(state, record);
}

void ResetTraceBuffers() {
  const int count = g_thread_count.load(std::memory_order_acquire);
  for (int i = 0; i < count; ++i) {
    ThreadTraceState* state = g_thread_states[i];
    state->written.store(0, std::memory_order_relaxed);
    state->open_depth.store(0, std::memory_order_relaxed);
  }
}

Status DumpTraceTo(const std::string& path) {
  // Rendered into memory and committed atomically: a torn trace JSON is
  // useless to Perfetto, so readers get the previous export or this one.
  std::ostringstream out;

  struct Event {
    int tid;
    TraceRecord record;
  };
  // Snapshot the rings first so sorting sees a consistent set. Threads
  // still writing race benignly: we only read the [written - n, written)
  // window that existed at the acquire load.
  const int thread_count = g_thread_count.load(std::memory_order_acquire);
  std::vector<Event> events;
  std::vector<std::pair<int, std::string>> thread_names;
  int64_t total_dropped = 0;
  for (int t = 0; t < thread_count; ++t) {
    const ThreadTraceState* state = g_thread_states[t];
    thread_names.emplace_back(state->tid, state->name);
    const TraceRecord* ring = state->ring.load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    const uint64_t written = state->written.load(std::memory_order_acquire);
    const uint64_t n = std::min(written, kTraceRingCapacity);
    total_dropped += static_cast<int64_t>(written - n);
    for (uint64_t i = written - n; i < written; ++i) {
      events.push_back(Event{state->tid, ring[i % kTraceRingCapacity]});
    }
  }
  // ts ascending; at equal ts longer spans first, so a parent that began
  // in the same microsecond as its child precedes it and viewers (and the
  // structural tests) see proper containment.
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) {
                     if (a.record.ts_us != b.record.ts_us) {
                       return a.record.ts_us < b.record.ts_us;
                     }
                     if (a.record.kind == kKindSpan &&
                         b.record.kind == kKindSpan) {
                       return a.record.payload > b.record.payload;
                     }
                     return false;
                   });

  out << "{\"displayTimeUnit\":\"ms\",\n\"otherData\":{\"manifest\":"
      << RunManifestJson() << ",\"dropped_records\":" << total_dropped
      << ",\"threads_lost\":"
      << g_threads_lost.load(std::memory_order_relaxed)
      << "},\n\"traceEvents\":[\n";
  bool first = true;
  auto emit = [&](const std::string& line) {
    if (!first) out << ",\n";
    first = false;
    out << line;
  };
  emit(JsonBuilder()
           .Add("ph", "M")
           .Add("pid", 1)
           .Add("tid", 0)
           .Add("name", "process_name")
           .AddRaw("args", JsonBuilder()
                               .Add("name", GetRunManifest().program.empty()
                                                ? std::string("edde")
                                                : GetRunManifest().program)
                               .Build())
           .Build());
  for (const auto& [tid, name] : thread_names) {
    emit(JsonBuilder()
             .Add("ph", "M")
             .Add("pid", 1)
             .Add("tid", tid)
             .Add("name", "thread_name")
             .AddRaw("args", JsonBuilder().Add("name", name).Build())
             .Build());
    emit(JsonBuilder()
             .Add("ph", "M")
             .Add("pid", 1)
             .Add("tid", tid)
             .Add("name", "thread_sort_index")
             .AddRaw("args",
                     JsonBuilder().Add("sort_index", tid).Build())
             .Build());
  }
  for (const Event& event : events) {
    const TraceRecord& record = event.record;
    if (record.label == nullptr) continue;  // torn record from a live ring
    if (record.kind == kKindSpan) {
      JsonBuilder span;
      span.Add("ph", "X")
          .Add("pid", 1)
          .Add("tid", event.tid)
          .Add("ts", record.ts_us)
          .Add("dur", record.payload)
          .Add("cat", "edde")
          .Add("name", record.label);
      if (record.trace_id != 0) {
        span.AddRaw("args",
                    JsonBuilder()
                        .Add("trace_id", FormatTraceId(record.trace_id))
                        .Build());
      }
      emit(span.Build());
    } else {
      double value = 0.0;
      std::memcpy(&value, &record.payload, sizeof(value));
      emit(JsonBuilder()
               .Add("ph", "C")
               .Add("pid", 1)
               .Add("tid", event.tid)
               .Add("ts", record.ts_us)
               .Add("name", record.label)
               .AddRaw("args",
                       JsonBuilder().Add("value", value).Build())
               .Build());
    }
  }
  out << "\n]}\n";
  return AtomicWriteFile(path, out.str());
}

Status DumpTrace() {
  const std::string path = trace_path();
  if (path.empty()) return Status::OK();
  return DumpTraceTo(path);
}

namespace trace_internal {

size_t SnapshotOpenSpans(char* buf, size_t cap) {
  if (cap == 0) return 0;
  size_t pos = 0;
  const int count = g_thread_count.load(std::memory_order_acquire);
  for (int t = 0; t < count; ++t) {
    const ThreadTraceState* state = g_thread_states[t];
    if (state == nullptr) continue;
    const int depth = state->open_depth.load(std::memory_order_acquire);
    for (int d = 0; d < depth && d < ThreadTraceState::kMaxOpen; ++d) {
      const char* label = state->open_labels[d];
      if (label == nullptr) continue;
      pos = AppendStr(buf, cap, pos, "  tid ");
      pos = AppendInt(buf, cap, pos, state->tid);
      pos = AppendStr(buf, cap, pos, " (");
      pos = AppendStr(buf, cap, pos, state->name);
      pos = AppendStr(buf, cap, pos, "): ");
      for (int indent = 0; indent < d; ++indent) {
        pos = AppendStr(buf, cap, pos, "> ");
      }
      pos = AppendStr(buf, cap, pos, label);
      pos = AppendStr(buf, cap, pos, " since +");
      pos = AppendInt(buf, cap, pos, state->open_start_us[d]);
      pos = AppendStr(buf, cap, pos, "us\n");
    }
  }
  buf[pos] = '\0';
  return pos;
}

}  // namespace trace_internal

}  // namespace edde
