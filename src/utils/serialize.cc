#include "utils/serialize.h"

#include <cstring>

#include "utils/durable_io.h"

namespace edde {

BinaryWriter::BinaryWriter(const std::string& path, Durability durability)
    : path_(path), durability_(durability) {
  if (durability_ == Durability::kDirect) {
    out_.open(path, std::ios::binary);
    if (!out_.is_open()) {
      status_ = Status::IOError("cannot open for writing: " + path);
    }
  }
}

void BinaryWriter::WriteBytes(const void* data, size_t count) {
  if (!status_.ok()) return;
  if (durability_ == Durability::kAtomic) {
    buffer_.append(static_cast<const char*>(data), count);
  } else {
    out_.write(static_cast<const char*>(data),
               static_cast<std::streamsize>(count));
  }
}

void BinaryWriter::WriteU32(uint32_t v) { WriteBytes(&v, sizeof(v)); }
void BinaryWriter::WriteU64(uint64_t v) { WriteBytes(&v, sizeof(v)); }
void BinaryWriter::WriteI64(int64_t v) { WriteBytes(&v, sizeof(v)); }
void BinaryWriter::WriteF32(float v) { WriteBytes(&v, sizeof(v)); }

void BinaryWriter::WriteString(const std::string& s) {
  WriteU64(s.size());
  WriteBytes(s.data(), s.size());
}

void BinaryWriter::WriteFloats(const float* data, size_t count) {
  WriteBytes(data, count * sizeof(float));
}

Status BinaryWriter::Finish() {
  if (!status_.ok()) return status_;
  if (durability_ == Durability::kAtomic) {
    status_ = AtomicWriteFile(path_, buffer_);
  } else {
    out_.flush();
    if (!out_.good()) status_ = Status::IOError("write failed");
    out_.close();
  }
  return status_;
}

BinaryReader::BinaryReader(const std::string& path)
    : in_(path, std::ios::binary) {
  if (!in_.is_open()) {
    status_ = Status::IOError("cannot open for reading: " + path);
    return;
  }
  in_.seekg(0, std::ios::end);
  std::streamoff end = in_.tellg();
  in_.seekg(0, std::ios::beg);
  if (end < 0 || !in_.good()) {
    status_ = Status::IOError("cannot determine file size: " + path);
    return;
  }
  file_size_ = static_cast<uint64_t>(end);
}

bool BinaryReader::ReadBytes(void* dst, size_t count) {
  if (!status_.ok()) return false;
  if (count > remaining()) {
    status_ = Status::Corruption("unexpected end of file");
    return false;
  }
  in_.read(reinterpret_cast<char*>(dst),
           static_cast<std::streamsize>(count));
  if (static_cast<size_t>(in_.gcount()) != count) {
    status_ = Status::Corruption("unexpected end of file");
    return false;
  }
  offset_ += count;
  return true;
}

bool BinaryReader::ReadU32(uint32_t* v) { return ReadBytes(v, sizeof(*v)); }
bool BinaryReader::ReadU64(uint64_t* v) { return ReadBytes(v, sizeof(*v)); }
bool BinaryReader::ReadI64(int64_t* v) { return ReadBytes(v, sizeof(*v)); }
bool BinaryReader::ReadF32(float* v) { return ReadBytes(v, sizeof(*v)); }
bool BinaryReader::ReadRaw(void* dst, size_t count) {
  return ReadBytes(dst, count);
}

bool BinaryReader::ReadString(std::string* s) {
  uint64_t size = 0;
  if (!ReadU64(&size)) return false;
  // A declared length longer than the bytes left in the file can only come
  // from corruption; reject it before the resize so a bit-flipped length
  // cannot trigger a huge allocation.
  if (size > remaining()) {
    status_ = Status::Corruption("string length exceeds remaining file bytes");
    return false;
  }
  s->resize(size);
  return size == 0 || ReadBytes(s->data(), size);
}

bool BinaryReader::ReadFloats(float* data, size_t count) {
  if (!status_.ok()) return false;
  if (count > remaining() / sizeof(float)) {  // overflow-safe clamp
    status_ = Status::Corruption("float array exceeds remaining file bytes");
    return false;
  }
  return ReadBytes(data, count * sizeof(float));
}

}  // namespace edde
