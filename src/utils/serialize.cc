#include "utils/serialize.h"

#include <cstring>

namespace edde {

BinaryWriter::BinaryWriter(const std::string& path)
    : out_(path, std::ios::binary) {
  if (!out_.is_open()) {
    status_ = Status::IOError("cannot open for writing: " + path);
  }
}

void BinaryWriter::WriteU32(uint32_t v) {
  if (!status_.ok()) return;
  out_.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void BinaryWriter::WriteU64(uint64_t v) {
  if (!status_.ok()) return;
  out_.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void BinaryWriter::WriteI64(int64_t v) {
  if (!status_.ok()) return;
  out_.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void BinaryWriter::WriteF32(float v) {
  if (!status_.ok()) return;
  out_.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void BinaryWriter::WriteString(const std::string& s) {
  WriteU64(s.size());
  if (!status_.ok()) return;
  out_.write(s.data(), static_cast<std::streamsize>(s.size()));
}

void BinaryWriter::WriteFloats(const float* data, size_t count) {
  if (!status_.ok()) return;
  out_.write(reinterpret_cast<const char*>(data),
             static_cast<std::streamsize>(count * sizeof(float)));
}

Status BinaryWriter::Finish() {
  if (status_.ok()) {
    out_.flush();
    if (!out_.good()) status_ = Status::IOError("write failed");
    out_.close();
  }
  return status_;
}

BinaryReader::BinaryReader(const std::string& path)
    : in_(path, std::ios::binary) {
  if (!in_.is_open()) {
    status_ = Status::IOError("cannot open for reading: " + path);
  }
}

bool BinaryReader::ReadBytes(void* dst, size_t count) {
  if (!status_.ok()) return false;
  in_.read(reinterpret_cast<char*>(dst),
           static_cast<std::streamsize>(count));
  if (static_cast<size_t>(in_.gcount()) != count) {
    status_ = Status::Corruption("unexpected end of file");
    return false;
  }
  return true;
}

bool BinaryReader::ReadU32(uint32_t* v) { return ReadBytes(v, sizeof(*v)); }
bool BinaryReader::ReadU64(uint64_t* v) { return ReadBytes(v, sizeof(*v)); }
bool BinaryReader::ReadI64(int64_t* v) { return ReadBytes(v, sizeof(*v)); }
bool BinaryReader::ReadF32(float* v) { return ReadBytes(v, sizeof(*v)); }

bool BinaryReader::ReadString(std::string* s) {
  uint64_t size = 0;
  if (!ReadU64(&size)) return false;
  if (size > (1ull << 32)) {
    status_ = Status::Corruption("string size implausibly large");
    return false;
  }
  s->resize(size);
  return size == 0 || ReadBytes(s->data(), size);
}

bool BinaryReader::ReadFloats(float* data, size_t count) {
  return ReadBytes(data, count * sizeof(float));
}

}  // namespace edde
