#ifndef EDDE_UTILS_STATUS_H_
#define EDDE_UTILS_STATUS_H_

#include <optional>
#include <ostream>
#include <string>
#include <utility>

#include "utils/logging.h"

namespace edde {

/// Error categories for fallible library operations (config validation,
/// (de)serialization, file IO). Programmer errors use EDDE_CHECK instead.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kIOError = 3,
  kFailedPrecondition = 4,
  kCorruption = 5,
  kInternal = 6,
  kDeadlineExceeded = 7,
  kUnavailable = 8,
};

/// Returns a human-readable name for `code` ("OK", "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// Value-semantic status object in the style of arrow::Status / rocksdb::Status.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with `code` and a diagnostic message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  /// Transient overload: the operation was refused to shed load and is
  /// safe to retry after backoff (admission-queue shedding, lame-duck).
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Result<T> couples a Status with a value, like arrow::Result.
/// Access the value only when ok(); ValueOrDie() enforces this.
template <typename T>
class Result {
 public:
  /// Implicit from value: success.
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Implicit from non-OK status: failure.
  Result(Status status) : status_(std::move(status)) {
    EDDE_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Returns the value; aborts if the result holds an error.
  const T& ValueOrDie() const& {
    EDDE_CHECK(ok()) << "Result::ValueOrDie on error: " << status_.ToString();
    return *value_;
  }
  T& ValueOrDie() & {
    EDDE_CHECK(ok()) << "Result::ValueOrDie on error: " << status_.ToString();
    return *value_;
  }
  T ValueOrDie() && {
    EDDE_CHECK(ok()) << "Result::ValueOrDie on error: " << status_.ToString();
    return std::move(*value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace edde

/// Propagates a non-OK Status out of the current function.
#define EDDE_RETURN_NOT_OK(expr)          \
  do {                                    \
    ::edde::Status _st = (expr);          \
    if (!_st.ok()) return _st;            \
  } while (false)

#endif  // EDDE_UTILS_STATUS_H_
