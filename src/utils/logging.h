#ifndef EDDE_UTILS_LOGGING_H_
#define EDDE_UTILS_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace edde {

/// Severity levels for the lightweight logging facility.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Returns the process-wide minimum level that is actually emitted. The
/// first call applies the EDDE_LOG_LEVEL environment variable (if set and
/// valid) as the initial minimum; the --log_level flag / SetMinLogLevel
/// override it.
LogLevel MinLogLevel();

/// Sets the process-wide minimum level. Messages below it are discarded.
void SetMinLogLevel(LogLevel level);

/// Parses "debug" / "info" / "warning" / "error" / "fatal" (or the numeric
/// 0-4) into a level. Returns false on unknown input.
bool ParseLogLevel(const std::string& text, LogLevel* out);

namespace internal {

/// Stream-style log message collector; emits on destruction.
/// Not part of the public API — use the EDDE_LOG / EDDE_CHECK macros.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Sink that swallows a LogMessage's stream when the level is disabled.
struct LogMessageVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace edde

#define EDDE_LOG_INTERNAL(level) \
  ::edde::internal::LogMessage(level, __FILE__, __LINE__).stream()

/// Usage: EDDE_LOG(INFO) << "message";
#define EDDE_LOG(severity) \
  EDDE_LOG_IS_ON(severity) \
      ? (void)0            \
      : ::edde::internal::LogMessageVoidify() & EDDE_LOG_INTERNAL(EDDE_LOG_LEVEL_##severity)

#define EDDE_LOG_LEVEL_DEBUG ::edde::LogLevel::kDebug
#define EDDE_LOG_LEVEL_INFO ::edde::LogLevel::kInfo
#define EDDE_LOG_LEVEL_WARNING ::edde::LogLevel::kWarning
#define EDDE_LOG_LEVEL_ERROR ::edde::LogLevel::kError
#define EDDE_LOG_LEVEL_FATAL ::edde::LogLevel::kFatal

#define EDDE_LOG_IS_ON(severity) \
  (EDDE_LOG_LEVEL_##severity < ::edde::MinLogLevel())

/// Fatal invariant check: aborts with a message when `cond` is false.
/// Used for programmer errors (shape mismatches, out-of-range arguments).
#define EDDE_CHECK(cond)                                           \
  (cond) ? (void)0                                                 \
         : ::edde::internal::LogMessageVoidify() &                 \
               EDDE_LOG_INTERNAL(::edde::LogLevel::kFatal)         \
                   << "Check failed: " #cond " "

#define EDDE_CHECK_OP(op, a, b)                                     \
  ((a)op(b)) ? (void)0                                              \
             : ::edde::internal::LogMessageVoidify() &              \
                   EDDE_LOG_INTERNAL(::edde::LogLevel::kFatal)      \
                       << "Check failed: " #a " " #op " " #b " ("   \
                       << (a) << " vs " << (b) << ") "

#define EDDE_CHECK_EQ(a, b) EDDE_CHECK_OP(==, a, b)
#define EDDE_CHECK_NE(a, b) EDDE_CHECK_OP(!=, a, b)
#define EDDE_CHECK_LT(a, b) EDDE_CHECK_OP(<, a, b)
#define EDDE_CHECK_LE(a, b) EDDE_CHECK_OP(<=, a, b)
#define EDDE_CHECK_GT(a, b) EDDE_CHECK_OP(>, a, b)
#define EDDE_CHECK_GE(a, b) EDDE_CHECK_OP(>=, a, b)

#endif  // EDDE_UTILS_LOGGING_H_
