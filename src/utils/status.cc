#include "utils/status.h"

namespace edde {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace edde
