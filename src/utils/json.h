#ifndef EDDE_UTILS_JSON_H_
#define EDDE_UTILS_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "utils/status.h"

namespace edde {

/// Minimal JSON document reader for this repo's own machine-readable
/// artifacts (metrics JSONL lines, Chrome trace files, BENCH_*.json). It is
/// a strict RFC-8259 subset reader — no comments, no trailing commas —
/// sized for tools (`bench_diff`) and structural tests, not for untrusted
/// hot-path input. Writing stays with JsonBuilder (utils/metrics.h).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; EDDE_CHECK on kind mismatch.
  bool AsBool() const;
  double AsNumber() const;
  const std::string& AsString() const;
  const std::vector<JsonValue>& AsArray() const;

  /// Non-finite-double convention: JSON has no NaN/Inf literal, so
  /// JsonBuilder writes such values as `null` and readers map `null` back
  /// to NaN through this accessor. Returns the number for kNumber, NaN for
  /// kNull; EDDE_CHECK on any other kind. Consumers that must distinguish
  /// "absent" from "present but non-finite" pair Has() with this.
  double NumberOrNaN() const;

  /// Object member access. `Get` returns nullptr when the key is absent
  /// (or the value is not an object); `Has` is the presence test.
  bool Has(const std::string& key) const;
  const JsonValue* Get(const std::string& key) const;

  /// Convenience lookups with fallbacks for absent / mistyped members.
  /// Note GetNumberOr maps a `null` member (the non-finite encoding, see
  /// NumberOrNaN) to `fallback` — callers that care use GetNumberOrNaN.
  double GetNumberOr(const std::string& key, double fallback) const;

  /// Number member, honoring the null-means-NaN convention: absent or
  /// mistyped members and `null` members all yield NaN.
  double GetNumberOrNaN(const std::string& key) const;
  std::string GetStringOr(const std::string& key,
                          const std::string& fallback) const;

  /// Object keys in document order (empty unless is_object()).
  const std::vector<std::string>& ObjectKeys() const;

  /// Parses one complete JSON document from `text` (trailing whitespace
  /// allowed, trailing garbage is an error).
  static Status Parse(const std::string& text, JsonValue* out);

  /// Parse() over the whole content of `path`.
  static Status ParseFile(const std::string& path, JsonValue* out);

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  // Document order preserved for ObjectKeys(); lookup goes through index_.
  std::vector<std::string> keys_;
  std::vector<JsonValue> members_;
  std::map<std::string, size_t> index_;
};

}  // namespace edde

#endif  // EDDE_UTILS_JSON_H_
