#include "utils/flags.h"

#include <cstdio>
#include <cstdlib>

#include "utils/crash.h"
#include "utils/failpoint.h"
#include "utils/logging.h"
#include "utils/metrics.h"
#include "utils/run_manifest.h"
#include "utils/trace.h"

namespace edde {

void FlagParser::Define(const std::string& name,
                        const std::string& default_value,
                        const std::string& help) {
  EDDE_CHECK(flags_.find(name) == flags_.end())
      << "flag redefined: " << name;
  flags_[name] = FlagInfo{default_value, default_value, help};
}

Status FlagParser::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      return Status::InvalidArgument("expected --flag, got: " + arg);
    }
    std::string body = arg.substr(2);
    std::string name, value;
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
    } else {
      name = body;
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";  // bare boolean flag
      }
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      return Status::InvalidArgument("unknown flag: --" + name);
    }
    it->second.value = value;
  }
  return Status::OK();
}

void FlagParser::PrintHelp(const std::string& program) const {
  std::printf("Usage: %s [--flag=value ...]\n", program.c_str());
  for (const auto& [name, info] : flags_) {
    std::printf("  --%-18s %s (default: %s)\n", name.c_str(),
                info.help.c_str(), info.default_value.c_str());
  }
}

std::string FlagParser::GetString(const std::string& name) const {
  auto it = flags_.find(name);
  EDDE_CHECK(it != flags_.end()) << "undefined flag: " << name;
  return it->second.value;
}

int FlagParser::GetInt(const std::string& name) const {
  return std::atoi(GetString(name).c_str());
}

double FlagParser::GetDouble(const std::string& name) const {
  return std::atof(GetString(name).c_str());
}

bool FlagParser::GetBool(const std::string& name) const {
  std::string v = GetString(name);
  return v == "true" || v == "1" || v == "yes";
}

bool FlagParser::Has(const std::string& name) const {
  return flags_.find(name) != flags_.end();
}

std::vector<std::pair<std::string, std::string>> FlagParser::Values() const {
  std::vector<std::pair<std::string, std::string>> values;
  values.reserve(flags_.size());
  for (const auto& [name, info] : flags_) {
    values.emplace_back(name, info.value);
  }
  return values;
}

void DefineCommonFlags(FlagParser* parser) {
  parser->Define("metrics_path", "",
                 "write telemetry (epoch/round records + aggregates) as "
                 "JSONL to this path; also: EDDE_METRICS_PATH env var");
  parser->Define("trace_path", "",
                 "write a Chrome/Perfetto trace_event timeline to this "
                 "path; also: EDDE_TRACE_PATH env var");
  parser->Define("log_level", "",
                 "minimum emitted log level: debug|info|warning|error|"
                 "fatal; also: EDDE_LOG_LEVEL env var");
}

void ApplyCommonFlags(const FlagParser& parser) {
  const std::string metrics_path = parser.GetString("metrics_path");
  if (!metrics_path.empty()) {
    MetricsRegistry::Global().SetSinkPath(metrics_path);
  }
  const std::string trace_path = parser.GetString("trace_path");
  if (!trace_path.empty()) {
    SetTracePath(trace_path);
  }
  const std::string log_level = parser.GetString("log_level");
  if (!log_level.empty()) {
    LogLevel level;
    if (ParseLogLevel(log_level, &level)) {
      SetMinLogLevel(level);
    } else {
      EDDE_LOG(WARNING) << "ignoring invalid --log_level=" << log_level
                        << " (want debug|info|warning|error|fatal)";
    }
  }
  // Provenance: the parsed configuration becomes part of every artifact
  // this run writes, and from here on a crash leaves a flight-recorder
  // report next to them.
  for (const auto& [name, value] : parser.Values()) {
    ManifestSetFlag(name, value);
  }
  if (parser.Has("seed")) {
    ManifestSetSeed(static_cast<uint64_t>(parser.GetInt("seed")));
  }
  InstallCrashHandler();
  // Ctrl-C / SIGTERM become checkpoint-then-exit instead of instant death.
  InstallShutdownHandler();
  // Fault injection for durability testing; no-op unless EDDE_FAILPOINTS
  // is set (and the armed spec lands in the manifest).
  failpoint::InitFromEnv();
}

}  // namespace edde
