#ifndef EDDE_UTILS_TABLE_H_
#define EDDE_UTILS_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace edde {

/// Pretty-prints aligned text tables for the benchmark harnesses, so every
/// bench binary can render the same rows the paper's tables report.
///
///   TablePrinter t({"Method", "C10", "C100"});
///   t.AddRow({"EDDE", "94.11%", "74.38%"});
///   t.Print(std::cout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a data row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Renders the table with column alignment and a header separator.
  void Print(std::ostream& os) const;

  /// Number of data rows added so far.
  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats `value` as a percentage with two decimals, e.g. 0.7438 -> "74.38%".
std::string FormatPercent(double value);

/// Formats `value` with `digits` decimals.
std::string FormatFloat(double value, int digits = 4);

}  // namespace edde

#endif  // EDDE_UTILS_TABLE_H_
