#include "utils/crash.h"

#include <atomic>
#include <csignal>
#include <cstring>
#include <mutex>

#include <fcntl.h>
#include <unistd.h>

#include "utils/failpoint.h"
#include "utils/logging.h"
#include "utils/metrics.h"
#include "utils/run_manifest.h"
#include "utils/threadpool.h"
#include "utils/trace.h"

namespace edde {

namespace {

// ---------------------------------------------------------------- log ring

/// Newest kLogRingSlots records, each truncated to kLogRecordBytes. Fixed
/// storage so the signal handler can read it without allocation. Slots are
/// claimed with a fetch_add, so concurrent loggers never interleave within
/// one slot; a reader racing a writer sees at worst one garbled line.
constexpr uint64_t kLogRingSlots = 128;
constexpr size_t kLogRecordBytes = 384;

char g_log_ring[kLogRingSlots][kLogRecordBytes];
std::atomic<uint64_t> g_log_head{0};

// ------------------------------------------------------------ report path

/// Directory + "/edde_crash_" prefix, pre-built at SetCrashReportDir time
/// so the handler only appends digits. Fixed buffer; never freed.
constexpr size_t kPathBytes = 512;
char g_report_prefix[kPathBytes] = "edde_crash_";
std::mutex g_report_dir_mu;

/// Set once a report has been written (or the fatal path ran) so the
/// cascade fatal-log -> abort -> SIGABRT handler emits a single report.
std::atomic<bool> g_crash_handled{false};

std::atomic<bool> g_handlers_installed{false};

size_t SafeAppendStr(char* buf, size_t cap, size_t pos, const char* s) {
  while (*s != '\0' && pos + 1 < cap) buf[pos++] = *s++;
  return pos;
}

size_t SafeAppendUint(char* buf, size_t cap, size_t pos, uint64_t v) {
  char digits[24];
  int n = 0;
  do {
    digits[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0 && n < 24);
  while (n > 0 && pos + 1 < cap) buf[pos++] = digits[--n];
  return pos;
}

void WriteAll(int fd, const char* data, size_t size) {
  size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n <= 0) return;
    done += static_cast<size_t>(n);
  }
}

void WriteStr(int fd, const char* s) { WriteAll(fd, s, std::strlen(s)); }

const char* SignalName(int sig) {
  switch (sig) {
    case SIGSEGV:
      return "SIGSEGV";
    case SIGABRT:
      return "SIGABRT";
    case SIGFPE:
      return "SIGFPE";
    case SIGBUS:
      return "SIGBUS";
    case SIGILL:
      return "SIGILL";
  }
  return "signal";
}

void CrashSignalHandler(int sig) {
  // The fatal-log path already wrote the report (and flushed sinks) before
  // raising SIGABRT; don't write a second one.
  if (!g_crash_handled.exchange(true, std::memory_order_acq_rel)) {
    WriteCrashReport(SignalName(sig));
  }
  // Restore the default disposition and re-raise so the process dies with
  // the original signal (core dumps, CI exit codes stay meaningful).
  std::signal(sig, SIG_DFL);
  ::raise(sig);
}

// ------------------------------------------------------ graceful shutdown

std::atomic<int> g_shutdown_signal{0};
std::atomic<bool> g_shutdown_handlers_installed{false};

void ShutdownSignalHandler(int sig) {
  // Second delivery while a shutdown is already pending: the safe point is
  // taking too long (or is never coming) — fall back to the default
  // disposition so Ctrl-C Ctrl-C still kills the process.
  int expected = 0;
  if (!g_shutdown_signal.compare_exchange_strong(expected, sig,
                                                 std::memory_order_acq_rel)) {
    std::signal(sig, SIG_DFL);
    ::raise(sig);
    return;
  }
  // Async-signal-safe breadcrumb; everything else happens at the safe point.
  WriteStr(2, "edde: shutdown requested (");
  WriteStr(2, sig == SIGINT ? "SIGINT" : "SIGTERM");
  WriteStr(2, "), finishing at next checkpoint boundary...\n");
}

}  // namespace

void InstallShutdownHandler() {
  if (g_shutdown_handlers_installed.exchange(true,
                                             std::memory_order_acq_rel)) {
    return;
  }
  const int signals[] = {SIGINT, SIGTERM};
  for (const int sig : signals) {
    struct sigaction action;
    std::memset(&action, 0, sizeof(action));
    action.sa_handler = ShutdownSignalHandler;
    sigemptyset(&action.sa_mask);
    ::sigaction(sig, &action, nullptr);
  }
}

bool ShutdownRequested() {
  return g_shutdown_signal.load(std::memory_order_acquire) != 0;
}

int ShutdownSignal() {
  return g_shutdown_signal.load(std::memory_order_acquire);
}

void RequestShutdown(int sig) {
  int expected = 0;
  g_shutdown_signal.compare_exchange_strong(expected, sig,
                                            std::memory_order_acq_rel);
}

void ClearShutdownRequest() {
  g_shutdown_signal.store(0, std::memory_order_release);
}

void GracefulShutdownExit() {
  const int sig = ShutdownSignal();
  // A safe point can be reached while another thread still has a
  // ParallelFor in flight (e.g. a background evaluation); flushing now
  // would interleave the sink write with the workers' metric increments
  // and tear the final JSONL lines. Drain the pool first.
  QuiescePool();
  // Between the drain and the flush — where the pre-fix race lived; armed
  // with `delay` it widens the window, with `crash` it proves the flush
  // below is what makes the JSONL complete.
  EDDE_FAILPOINT("shutdown.flush");
  (void)MetricsRegistry::Global().DumpToSink();
  (void)DumpTrace();
  EDDE_LOG(INFO) << "graceful shutdown complete (signal " << sig << ")";
  std::exit(sig > 0 ? 128 + sig : 0);
}

void InstallCrashHandler() {
  if (g_handlers_installed.exchange(true, std::memory_order_acq_rel)) {
    return;
  }
  const int signals[] = {SIGSEGV, SIGABRT, SIGFPE, SIGBUS, SIGILL};
  for (const int sig : signals) {
    struct sigaction action;
    std::memset(&action, 0, sizeof(action));
    action.sa_handler = CrashSignalHandler;
    sigemptyset(&action.sa_mask);
    // No SA_RESETHAND: the handler restores SIG_DFL itself after the
    // report, and SA_NODEFER is unnecessary since it never returns.
    ::sigaction(sig, &action, nullptr);
  }
}

void SetCrashReportDir(const std::string& dir) {
  std::lock_guard<std::mutex> lock(g_report_dir_mu);
  size_t pos = 0;
  if (!dir.empty()) {
    pos = SafeAppendStr(g_report_prefix, kPathBytes, pos, dir.c_str());
    pos = SafeAppendStr(g_report_prefix, kPathBytes, pos, "/");
  }
  pos = SafeAppendStr(g_report_prefix, kPathBytes, pos, "edde_crash_");
  g_report_prefix[pos] = '\0';
}

bool WriteCrashReport(const char* reason) {
  // Build "<prefix><pid>.txt" without allocating.
  char path[kPathBytes + 32];
  size_t pos = SafeAppendStr(path, sizeof(path), 0, g_report_prefix);
  pos = SafeAppendUint(path, sizeof(path), pos,
                       static_cast<uint64_t>(::getpid()));
  pos = SafeAppendStr(path, sizeof(path), pos, ".txt");
  path[pos] = '\0';

  const int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;

  WriteStr(fd, "=== EDDE crash report ===\nreason: ");
  WriteStr(fd, reason != nullptr ? reason : "unknown");
  WriteStr(fd, "\n\n--- run manifest ---\n");
  WriteStr(fd, RunManifestJsonForSignal());
  WriteStr(fd, "\n\n--- recent log records (oldest first) ---\n");
  {
    // Static: 128 * 384 = 48 KiB would be heavy on the crashed stack.
    static char log_snapshot[kLogRingSlots * kLogRecordBytes + 1];
    const size_t n = crash_internal::SnapshotLogRing(log_snapshot,
                                                     sizeof(log_snapshot));
    WriteAll(fd, log_snapshot, n);
  }
  WriteStr(fd, "\n--- open trace spans ---\n");
  {
    static char span_snapshot[16 * 1024];
    const size_t n = trace_internal::SnapshotOpenSpans(
        span_snapshot, sizeof(span_snapshot));
    if (n == 0) {
      WriteStr(fd, "  (none)\n");
    } else {
      WriteAll(fd, span_snapshot, n);
    }
  }
  WriteStr(fd, "=== end of report ===\n");
  ::close(fd);

  // Point whoever is watching stderr at the artifact.
  WriteStr(2, "edde: crash report written to ");
  WriteStr(2, path);
  WriteStr(2, "\n");
  return true;
}

namespace crash_internal {

void AppendLogRecord(const char* data, size_t size) {
  const uint64_t slot =
      g_log_head.fetch_add(1, std::memory_order_relaxed) % kLogRingSlots;
  char* dst = g_log_ring[slot];
  const size_t n = size < kLogRecordBytes - 1 ? size : kLogRecordBytes - 1;
  std::memcpy(dst, data, n);
  dst[n] = '\0';
}

size_t SnapshotLogRing(char* out, size_t cap) {
  if (cap == 0) return 0;
  const uint64_t head = g_log_head.load(std::memory_order_acquire);
  const uint64_t count = head < kLogRingSlots ? head : kLogRingSlots;
  size_t pos = 0;
  for (uint64_t i = head - count; i < head; ++i) {
    const char* record = g_log_ring[i % kLogRingSlots];
    if (record[0] == '\0') continue;
    pos = SafeAppendStr(out, cap, pos, record);
    if (pos > 0 && out[pos - 1] != '\n') {
      pos = SafeAppendStr(out, cap, pos, "\n");
    }
  }
  out[pos] = '\0';
  return pos;
}

void HandleFatalLogMessage() {
  if (g_crash_handled.exchange(true, std::memory_order_acq_rel)) return;
  // Normal (non-signal) context: flush the sinks so a mid-run fatal still
  // leaves a parseable metrics JSONL and a loadable trace. Errors are
  // swallowed — the process is going down for the original failure.
  (void)MetricsRegistry::Global().DumpToSink();
  (void)DumpTrace();
  WriteCrashReport("EDDE_CHECK failure / LOG(FATAL)");
}

}  // namespace crash_internal
}  // namespace edde
